#include "core/evaluation_engine.h"

#include <algorithm>
#include <exception>
#include <utility>

namespace mapcq::core {

namespace {

// A capacity bound is a maximum: never spread it over more shards than
// entries, or the per-shard floor of 1 would let the table exceed it.
std::size_t shard_count(const engine_options& opt) {
  std::size_t n = std::max<std::size_t>(1, opt.shards);
  if (opt.capacity > 0) n = std::min(n, opt.capacity);
  return n;
}

}  // namespace

std::size_t approx_evaluation_bytes(const evaluation& e) noexcept {
  std::size_t n = sizeof(evaluation);
  for (const auto& row : e.config.partition) n += sizeof(row) + row.capacity() * sizeof(double);
  for (const auto& row : e.config.forward) n += sizeof(row) + row.capacity() / 8;
  n += e.config.mapping.capacity() * sizeof(std::size_t);
  n += e.config.dvfs.capacity() * sizeof(std::size_t);
  n += e.reject_reason.capacity();
  n += e.stage_latency_ms.capacity() * sizeof(double);
  n += e.stage_energy_mj.capacity() * sizeof(double);
  n += e.stage_accuracy_pct.capacity() * sizeof(double);
  n += e.exit_fractions.capacity() * sizeof(double);
  return n;
}

evaluation_engine::evaluation_engine(const evaluator& eval, engine_options opt)
    : opt_(opt), shard_capacity_(0), shards_(shard_count(opt)) {
  state_ = std::make_shared<const epoch_state>(epoch_state{&eval, 0});
  if (opt_.capacity > 0) shard_capacity_ = opt_.capacity / shards_.size();
  if (opt_.threads > 1)
    pool_ = std::make_unique<util::thread_pool>(
        util::pool_options{opt_.threads, opt_.pin_threads});
}

std::shared_ptr<const evaluation_engine::epoch_state> evaluation_engine::current() const {
  const std::lock_guard<std::mutex> lock{state_mu_};
  return state_;
}

std::uint64_t evaluation_engine::epoch() const { return current()->epoch; }

void evaluation_engine::set_ground_truth_tap(ground_truth_tap tap) {
  // Unique access excludes every in-flight fire_tap: when this returns, no
  // thread is inside the previous tap and none can observe it again.
  const std::unique_lock<std::shared_mutex> lock{tap_mu_};
  tap_ = std::move(tap);
}

void evaluation_engine::fire_tap(const configuration& config,
                                 const evaluation& result) noexcept {
  const std::shared_lock<std::shared_mutex> lock{tap_mu_};
  if (!tap_) return;
  try {
    tap_(config, result);
  } catch (...) {
    // An observer must never fail a successful evaluation; drop it.
  }
}

void evaluation_engine::advance_epoch(const evaluator& next) {
  std::uint64_t fresh = 0;
  {
    const std::lock_guard<std::mutex> lock{state_mu_};
    fresh = state_->epoch + 1;
    state_ = std::make_shared<const epoch_state>(epoch_state{&next, fresh});
  }
  // Purge everything the new epoch can never serve. Old-epoch batches still
  // in flight may re-insert afterwards; their entries stay tagged stale,
  // are skipped by every lookup, and fall out on the next advance (or under
  // capacity eviction). Old in-flight slots are left for their owners to
  // retire — claim matching is epoch-exact, so nobody new can join them.
  std::size_t purged = 0;
  for (shard& s : shards_) {
    const std::lock_guard<std::mutex> lock{s.mu};
    for (auto it = s.order.begin(); it != s.order.end();) {
      if (it->epoch == fresh) {
        ++it;
        continue;
      }
      auto& bucket = s.map.at(it->key);
      for (auto e = bucket.begin(); e != bucket.end(); ++e) {
        if (*e == it) {
          bucket.erase(e);
          break;
        }
      }
      if (bucket.empty()) s.map.erase(it->key);
      bytes_.fetch_sub(it->bytes, std::memory_order_relaxed);
      it = s.order.erase(it);
      ++purged;
    }
  }
  invalidated_.fetch_add(purged, std::memory_order_relaxed);
}

void evaluation_engine::insert(std::size_t key, const evaluation& result,
                               std::uint64_t epoch) {
  shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock{s.mu};
  auto& bucket = s.map[key];
  // A concurrent batch may have raced us to the same configuration; keep
  // the first copy so the bucket stays in step with the eviction list.
  for (const entry_list::iterator entry : bucket)
    if (entry->epoch == epoch && entry->value.config == result.config) return;
  const std::size_t entry_bytes = approx_evaluation_bytes(result);
  s.order.push_back(cache_entry{key, epoch, entry_bytes, result});
  bucket.push_back(std::prev(s.order.end()));
  bytes_.fetch_add(entry_bytes, std::memory_order_relaxed);

  while (shard_capacity_ > 0 && s.order.size() > shard_capacity_) {
    const entry_list::iterator victim = s.order.begin();
    const auto vit = s.map.find(victim->key);
    auto& ventries = vit->second;
    for (auto e = ventries.begin(); e != ventries.end(); ++e) {
      if (*e == victim) {
        ventries.erase(e);
        break;
      }
    }
    if (ventries.empty()) s.map.erase(vit);
    bytes_.fetch_sub(victim->bytes, std::memory_order_relaxed);
    s.order.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

evaluation_engine::claim evaluation_engine::claim_slot(std::size_t key,
                                                       const configuration& config,
                                                       std::uint64_t epoch) {
  shard& s = shard_for(key);
  claim c;
  const std::lock_guard<std::mutex> lock{s.mu};
  // 1. Memo table. Holding the shard lock for the whole claim closes the
  // classic stampede window: an owner publishes its result and retires its
  // in-flight slot under this same lock, so "in neither table" can only
  // mean "never started". Entries of other epochs are invisible: a
  // promotion must never serve predictions from a retired model.
  const auto it = s.map.find(key);
  if (it != s.map.end()) {
    for (const entry_list::iterator entry : it->second) {
      if (entry->epoch == epoch && entry->value.config == config) {
        if (opt_.eviction == eviction_policy::lru)
          s.order.splice(s.order.end(), s.order, entry);
        c.outcome = claim::kind::hit;
        c.value = entry->value;
        hits_.fetch_add(1, std::memory_order_relaxed);
        return c;
      }
    }
  }
  // 2. In-flight table: somebody else is evaluating this exact candidate on
  // this exact model; join their run instead of starting a second one.
  const auto fit = s.inflight.find(key);
  if (fit != s.inflight.end()) {
    for (const inflight_slot& slot : fit->second) {
      if (slot.epoch == epoch && slot.config == config) {
        c.outcome = claim::kind::join;
        c.pending = slot.result;
        inflight_.fetch_add(1, std::memory_order_relaxed);
        return c;
      }
    }
  }
  // 3. Nobody has it: claim ownership and advertise the pending run.
  c.outcome = claim::kind::owner;
  c.pending = c.promise.get_future().share();
  s.inflight[key].push_back({config, epoch, c.pending});
  misses_.fetch_add(1, std::memory_order_relaxed);
  return c;
}

void evaluation_engine::retire_slot(std::size_t key, const configuration& config,
                                    std::uint64_t epoch) {
  shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock{s.mu};
  const auto fit = s.inflight.find(key);
  if (fit == s.inflight.end()) return;
  auto& slots = fit->second;
  for (auto slot = slots.begin(); slot != slots.end(); ++slot) {
    if (slot->epoch == epoch && slot->config == config) {
      slots.erase(slot);
      break;
    }
  }
  if (slots.empty()) s.inflight.erase(fit);
}

void evaluation_engine::complete_owner(std::size_t key, const configuration& config,
                                       std::uint64_t epoch, std::promise<evaluation>& promise,
                                       const evaluation& result) {
  // Publish before retiring the slot (see claim_slot's invariant: a prober
  // that sees neither table entry knows the run never started).
  insert(key, result, epoch);
  retire_slot(key, config, epoch);
  promise.set_value(result);
  // The tap fires after publication, outside every shard lock: joiners are
  // already unblocked and the observer can take its own locks freely.
  fire_tap(config, result);
}

void evaluation_engine::abandon_owner(std::size_t key, const configuration& config,
                                      std::uint64_t epoch, std::promise<evaluation>& promise) {
  retire_slot(key, config, epoch);
  promise.set_exception(std::current_exception());
}

evaluation evaluation_engine::evaluate(const configuration& config) {
  const std::shared_ptr<const epoch_state> st = current();
  if (!opt_.memoize) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    const evaluation fresh = st->eval->evaluate(config);
    fire_tap(config, fresh);
    return fresh;
  }
  const std::size_t key = config.hash();
  claim c = claim_slot(key, config, st->epoch);
  switch (c.outcome) {
    case claim::kind::hit:
      return c.value;
    case claim::kind::join:
      return c.pending.get();  // blocks until the owning thread finishes
    case claim::kind::owner:
      break;
  }
  try {
    const evaluation fresh = st->eval->evaluate(config);
    complete_owner(key, config, st->epoch, c.promise, fresh);
    return fresh;
  } catch (...) {
    abandon_owner(key, config, st->epoch, c.promise);
    throw;
  }
}

void evaluation_engine::plan_batch(batch_plan& plan) {
  plan.state = current();
  const std::size_t n = plan.configs.size();
  plan.out.resize(n);

  // Classify every element: earlier in-batch groups first (so a duplicate
  // of our own pending representative counts as `dedup`, exactly as the
  // synchronous batch always has), then the shared cache / in-flight state.
  std::size_t dups = 0;
  std::unordered_map<std::size_t, std::vector<std::size_t>> local;  // key -> group indices
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t key = plan.configs[i].hash();
    bool merged = false;
    if (const auto lit = local.find(key); lit != local.end()) {
      for (const std::size_t gi : lit->second) {
        if (plan.configs[plan.groups[gi].rep] == plan.configs[i]) {
          plan.groups[gi].dups.push_back(i);
          ++dups;
          merged = true;
          break;
        }
      }
    }
    if (merged) continue;

    claim c = claim_slot(key, plan.configs[i], plan.state->epoch);
    if (c.outcome == claim::kind::hit) {
      plan.out[i] = std::move(c.value);
      continue;
    }
    batch_plan::group g;
    g.rep = i;
    g.key = key;
    g.pending = std::move(c.pending);
    if (c.outcome == claim::kind::owner) {
      g.owner = true;
      g.promise = std::move(c.promise);
      plan.owners.push_back(plan.groups.size());
    }
    local[key].push_back(plan.groups.size());
    plan.groups.push_back(std::move(g));
  }
  // `claim_slot` already counted hits/misses/inflight per element; only the
  // in-batch dedups are counted here.
  dedup_.fetch_add(dups, std::memory_order_relaxed);
}

void evaluation_engine::run_owner(batch_plan& plan, std::size_t group_index) {
  batch_plan::group& g = plan.groups[group_index];
  try {
    // The batch's captured evaluator, not the live one: a concurrent
    // advance_epoch must not switch models under a half-evaluated batch.
    const evaluation fresh = plan.state->eval->evaluate(plan.configs[g.rep]);
    complete_owner(g.key, plan.configs[g.rep], plan.state->epoch, g.promise, fresh);
  } catch (...) {
    // Park the exception in the promise: finish_plan rethrows it on the
    // consuming thread. Unwinding here would escape into a pool worker and
    // std::terminate (thread_pool runs tasks bare), and would leave the
    // remaining owned slots of an inline batch claimed forever.
    abandon_owner(g.key, plan.configs[g.rep], plan.state->epoch, g.promise);
  }
}

std::vector<std::span<const std::size_t>> evaluation_engine::owner_chunks(
    const batch_plan& plan) const {
  std::vector<std::span<const std::size_t>> chunks;
  const std::span<const std::size_t> owners{plan.owners};
  if (owners.empty()) return chunks;
  if (!opt_.soa_batch) {
    // Scalar dispatch: one task per owner, balanced by pool work-stealing.
    chunks.reserve(owners.size());
    for (std::size_t k = 0; k < owners.size(); ++k) chunks.push_back(owners.subspan(k, 1));
    return chunks;
  }
  // Batched dispatch: as few chunks as keep every worker busy, so the SoA
  // gather amortizes over the largest possible batches.
  const std::size_t n_chunks = pool_ ? std::min(owners.size(), pool_->size()) : 1;
  chunks.reserve(n_chunks);
  const std::size_t stride = owners.size() / n_chunks;
  const std::size_t extra = owners.size() % n_chunks;
  std::size_t begin = 0;
  for (std::size_t k = 0; k < n_chunks; ++k) {
    const std::size_t len = stride + (k < extra ? 1 : 0);
    chunks.push_back(owners.subspan(begin, len));
    begin += len;
  }
  return chunks;
}

void evaluation_engine::run_owner_chunk(batch_plan& plan,
                                        std::span<const std::size_t> group_indices) {
  if (!opt_.soa_batch || group_indices.size() == 1) {
    for (const std::size_t gi : group_indices) run_owner(plan, gi);
    return;
  }
  std::vector<const configuration*> reps;
  reps.reserve(group_indices.size());
  for (const std::size_t gi : group_indices)
    reps.push_back(&plan.configs[plan.groups[gi].rep]);

  std::vector<evaluation> fresh;
  try {
    // The batch's captured evaluator, exactly as run_owner uses it.
    fresh = plan.state->eval->evaluate_batch(reps);
  } catch (...) {
    // All-or-nothing batch failure loses per-element attribution; re-run
    // scalar so only the actually-failing candidates park exceptions (and
    // the healthy ones still publish). The double evaluation only happens
    // on this error path.
    for (const std::size_t gi : group_indices) run_owner(plan, gi);
    return;
  }
  for (std::size_t k = 0; k < group_indices.size(); ++k) {
    batch_plan::group& g = plan.groups[group_indices[k]];
    complete_owner(g.key, plan.configs[g.rep], plan.state->epoch, g.promise, fresh[k]);
  }
}

void evaluation_engine::finish_plan(batch_plan& plan) {
  for (batch_plan::group& g : plan.groups) {
    plan.out[g.rep] = g.pending.get();  // own run or foreign join; may rethrow
    for (const std::size_t d : g.dups) plan.out[d] = plan.out[g.rep];
  }
}

std::vector<evaluation> evaluation_engine::evaluate_batch(
    std::span<const configuration> configs) {
  const std::size_t n = configs.size();
  if (!opt_.memoize) {
    const std::shared_ptr<const epoch_state> st = current();
    std::vector<evaluation> out(n);
    misses_.fetch_add(n, std::memory_order_relaxed);
    if (pool_ && n > 1) {
      pool_->parallel_for(n, [&](std::size_t i) { out[i] = st->eval->evaluate(configs[i]); });
    } else {
      for (std::size_t i = 0; i < n; ++i) out[i] = st->eval->evaluate(configs[i]);
    }
    for (std::size_t i = 0; i < n; ++i) fire_tap(configs[i], out[i]);
    return out;
  }

  batch_plan plan;
  plan.configs = configs;  // view of the caller's span: no copy on this path
  plan_batch(plan);
  const std::vector<std::span<const std::size_t>> chunks = owner_chunks(plan);
  if (pool_ && chunks.size() > 1) {
    // Per-batch countdown, NOT parallel_for: its wait_idle() is a
    // whole-pool barrier, and other batches (async island generations,
    // racing requests) may keep this shared pool busy indefinitely. Only
    // this batch's own tasks are awaited. Capturing stack state is safe:
    // run_owner_chunk never throws, so the countdown always completes and
    // we never return while a task is live.
    std::promise<void> done;
    std::future<void> all_done = done.get_future();
    std::atomic<std::size_t> remaining{chunks.size()};
    for (const std::span<const std::size_t> chunk : chunks) {
      pool_->submit([this, &plan, chunk, &remaining, &done] {
        run_owner_chunk(plan, chunk);
        if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) done.set_value();
      });
    }
    all_done.wait();
  } else {
    for (const std::span<const std::size_t> chunk : chunks) run_owner_chunk(plan, chunk);
  }
  finish_plan(plan);
  return std::move(plan.out);
}

std::future<std::vector<evaluation>> evaluation_engine::evaluate_batch_async(
    std::vector<configuration> configs) {
  if (!opt_.memoize) {
    // Pass-through mode: evaluate inline; the async shape is kept only so
    // callers need not special-case it (exceptions still land in the
    // future, per the contract).
    std::promise<std::vector<evaluation>> done;
    std::future<std::vector<evaluation>> fut = done.get_future();
    try {
      done.set_value(evaluate_batch(configs));
    } catch (...) {
      done.set_exception(std::current_exception());
    }
    return fut;
  }

  // The plan (probe + dedup + in-flight registration + all counter bumps)
  // runs synchronously here; only the owned evaluator runs are enqueued.
  // The batch owns its configurations: moving the plan keeps the vector's
  // heap buffer, so the span stays valid for the pool tasks' lifetime.
  auto plan = std::make_shared<batch_plan>();
  plan->storage = std::move(configs);
  plan->configs = plan->storage;
  plan_batch(*plan);

  if (!pool_) {
    // No workers: evaluate inline (the documented degenerate mode). Joins
    // may block on foreign threads, but only this caller waits — never a
    // pool worker — and failures still surface at get().
    for (const std::span<const std::size_t> chunk : owner_chunks(*plan))
      run_owner_chunk(*plan, chunk);
    std::promise<std::vector<evaluation>> done;
    std::future<std::vector<evaluation>> fut = done.get_future();
    try {
      finish_plan(*plan);
      done.set_value(std::move(plan->out));
    } catch (...) {
      done.set_exception(std::current_exception());
    }
    return fut;
  }

  // Owned misses go to the pool; the last one to finish flips `owners_done`
  // (immediately, when the batch was all hits and joins — the call must
  // never block on foreign runs). Workers only ever evaluate — joining
  // foreign in-flight runs is deferred to the caller's get(), so
  // overlapping batches can never deadlock the pool however small it is.
  struct async_state {
    std::shared_ptr<batch_plan> plan;
    /// Chunk spans view plan->owners, which plan_batch froze; keeping them
    /// here keeps the pool tasks' captures trivially copyable.
    std::vector<std::span<const std::size_t>> chunks;
    std::promise<void> owners_done;
    std::shared_future<void> done_future;
    std::atomic<std::size_t> remaining{0};
  };
  auto state = std::make_shared<async_state>();
  state->plan = plan;
  state->chunks = owner_chunks(*plan);
  state->done_future = state->owners_done.get_future().share();
  state->remaining.store(state->chunks.size(), std::memory_order_relaxed);

  if (state->chunks.empty()) {
    state->owners_done.set_value();
  } else {
    for (const std::span<const std::size_t> chunk : state->chunks) {
      pool_->submit([this, state, chunk] {
        run_owner_chunk(*state->plan, chunk);
        if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1)
          state->owners_done.set_value();
      });
    }
  }
  // Deferred assembly: runs on the thread that calls get()/wait(); an
  // abandoned owner's exception rethrows there.
  return std::async(std::launch::deferred, [this, state] {
    state->done_future.wait();
    finish_plan(*state->plan);
    return std::move(state->plan->out);
  });
}

engine_stats evaluation_engine::stats() const noexcept {
  engine_stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.dedup = dedup_.load(std::memory_order_relaxed);
  s.inflight = inflight_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.invalidated = invalidated_.load(std::memory_order_relaxed);
  s.cache_bytes = bytes_.load(std::memory_order_relaxed);
  return s;
}

std::size_t evaluation_engine::size() const {
  std::size_t total = 0;
  for (const shard& s : shards_) {
    const std::lock_guard<std::mutex> lock{s.mu};
    total += s.order.size();
  }
  return total;
}

void evaluation_engine::clear() {
  for (shard& s : shards_) {
    const std::lock_guard<std::mutex> lock{s.mu};
    for (const cache_entry& entry : s.order)
      bytes_.fetch_sub(entry.bytes, std::memory_order_relaxed);
    s.map.clear();
    s.order.clear();
  }
}

std::vector<evaluation> evaluation_engine::export_cache() const {
  const std::uint64_t epoch = current()->epoch;
  std::vector<evaluation> out;
  for (const shard& s : shards_) {
    const std::lock_guard<std::mutex> lock{s.mu};
    for (const cache_entry& entry : s.order)
      if (entry.epoch == epoch) out.push_back(entry.value);
  }
  return out;
}

void evaluation_engine::import_cache(std::span<const evaluation> entries) {
  const std::uint64_t epoch = current()->epoch;
  for (const evaluation& e : entries) insert(e.config.hash(), e, epoch);
}

}  // namespace mapcq::core
