#include "core/evolutionary.h"

#include <algorithm>
#include <future>
#include <limits>
#include <map>
#include <stdexcept>
#include <utility>

#include "core/pareto.h"

namespace mapcq::core {

namespace {

void mutate(genome& g, const search_space& space, const ga_options& opt, util::rng& gen) {
  const std::size_t stages = space.stages();
  for (std::size_t grp = 0; grp < g.ratio_levels.size(); ++grp) {
    if (gen.bernoulli(opt.ratio_mutation_prob)) {
      const auto s = static_cast<std::size_t>(
          gen.uniform_int(0, static_cast<std::int64_t>(stages) - 1));
      const int delta = gen.bernoulli(0.5) ? 1 : -1;
      const int lo = s == 0 ? 1 : 0;
      g.ratio_levels[grp][s] =
          std::clamp(g.ratio_levels[grp][s] + delta, lo, space.ratio_levels() - 1);
    }
    if (stages > 1 && gen.bernoulli(opt.forward_mutation_prob)) {
      const auto s = static_cast<std::size_t>(
          gen.uniform_int(0, static_cast<std::int64_t>(stages) - 2));
      g.forward[grp][s] = !g.forward[grp][s];
    }
  }
  if (gen.bernoulli(opt.mapping_swap_prob) && stages > 1) {
    const auto a = static_cast<std::size_t>(
        gen.uniform_int(0, static_cast<std::int64_t>(stages) - 1));
    const auto b = static_cast<std::size_t>(
        gen.uniform_int(0, static_cast<std::int64_t>(stages) - 1));
    std::swap(g.mapping[a], g.mapping[b]);
  }
  for (std::size_t u = 0; u < g.dvfs.size(); ++u) {
    if (!gen.bernoulli(opt.dvfs_mutation_prob)) continue;
    const auto levels = static_cast<std::int64_t>(space.plat().unit(u).dvfs.levels());
    const std::int64_t delta = gen.bernoulli(0.5) ? 1 : -1;
    const std::int64_t next =
        std::clamp<std::int64_t>(static_cast<std::int64_t>(g.dvfs[u]) + delta, 0, levels - 1);
    g.dvfs[u] = static_cast<std::size_t>(next);
  }
}

genome crossover(const genome& a, const genome& b, util::rng& gen) {
  genome child = a;
  for (std::size_t grp = 0; grp < child.ratio_levels.size(); ++grp) {
    if (gen.bernoulli(0.5)) {
      child.ratio_levels[grp] = b.ratio_levels[grp];
      child.forward[grp] = b.forward[grp];
    }
  }
  if (gen.bernoulli(0.5)) child.mapping = b.mapping;  // permutations swap atomically
  for (std::size_t u = 0; u < child.dvfs.size(); ++u)
    if (gen.bernoulli(0.5)) child.dvfs[u] = b.dvfs[u];
  return child;
}

/// Tournament of two among the ranked (ascending objective) survivors.
const genome& tournament(const std::vector<genome>& pool, util::rng& gen) {
  const auto n = static_cast<std::int64_t>(pool.size());
  const auto a = static_cast<std::size_t>(gen.uniform_int(0, n - 1));
  const auto b = static_cast<std::size_t>(gen.uniform_int(0, n - 1));
  return pool[std::min(a, b)];  // pool is sorted best-first
}

/// Non-dominated front index per candidate over (latency, energy, -acc);
/// infeasible candidates get a sentinel beyond every front.
std::vector<std::size_t> front_indices(const std::vector<evaluation>& evals) {
  constexpr std::size_t unranked = static_cast<std::size_t>(-1);
  std::vector<std::size_t> front(evals.size(), unranked);
  std::vector<std::vector<double>> pts(evals.size());
  for (std::size_t i = 0; i < evals.size(); ++i)
    pts[i] = {evals[i].avg_latency_ms, evals[i].avg_energy_mj, -evals[i].accuracy_pct};

  std::size_t assigned = 0;
  std::size_t total_feasible = 0;
  for (const auto& e : evals)
    if (e.feasible) ++total_feasible;

  // Peel fronts: at each level, collect every unassigned candidate not
  // dominated by another unassigned candidate, then assign the whole set.
  for (std::size_t level = 0; assigned < total_feasible; ++level) {
    std::vector<std::size_t> peel;
    for (std::size_t i = 0; i < evals.size(); ++i) {
      if (!evals[i].feasible || front[i] != unranked) continue;
      bool dominated = false;
      for (std::size_t j = 0; j < evals.size() && !dominated; ++j) {
        if (i == j || !evals[j].feasible || front[j] != unranked) continue;
        if (dominates(pts[j], pts[i])) dominated = true;
      }
      if (!dominated) peel.push_back(i);
    }
    for (const std::size_t i : peel) front[i] = level;
    assigned += peel.size();
  }
  for (std::size_t i = 0; i < evals.size(); ++i)
    if (front[i] == unranked) front[i] = evals.size() + 1;  // infeasible sentinel
  return front;
}

/// NSGA-II crowding distance over (latency, energy, -accuracy), computed
/// within each front. Boundary candidates get +inf so the front's extreme
/// corners (cheapest, most accurate) always survive.
std::vector<double> crowding_distances(const std::vector<evaluation>& evals,
                                       const std::vector<std::size_t>& fronts) {
  std::vector<double> dist(evals.size(), 0.0);
  const auto metric = [&](std::size_t i, int axis) {
    switch (axis) {
      case 0: return evals[i].avg_latency_ms;
      case 1: return evals[i].avg_energy_mj;
      default: return -evals[i].accuracy_pct;
    }
  };

  std::map<std::size_t, std::vector<std::size_t>> by_front;
  for (std::size_t i = 0; i < evals.size(); ++i)
    if (evals[i].feasible) by_front[fronts[i]].push_back(i);

  for (auto& [level, members] : by_front) {
    if (members.size() <= 2) {
      for (const std::size_t i : members) dist[i] = std::numeric_limits<double>::infinity();
      continue;
    }
    for (int axis = 0; axis < 3; ++axis) {
      std::sort(members.begin(), members.end(),
                [&](std::size_t a, std::size_t b) { return metric(a, axis) < metric(b, axis); });
      const double lo = metric(members.front(), axis);
      const double hi = metric(members.back(), axis);
      dist[members.front()] = std::numeric_limits<double>::infinity();
      dist[members.back()] = std::numeric_limits<double>::infinity();
      if (hi <= lo) continue;
      for (std::size_t r = 1; r + 1 < members.size(); ++r)
        dist[members[r]] +=
            (metric(members[r + 1], axis) - metric(members[r - 1], axis)) / (hi - lo);
    }
  }
  return dist;
}

/// hybrid_nsga: non-dominated front first, eq. 16 objective within a front.
/// objective_only: the paper-literal pure P ranking.
std::vector<std::size_t> rank_order(const std::vector<evaluation>& evals,
                                    const ga_options& opt) {
  std::vector<std::size_t> order(evals.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (opt.selection == selection_mode::hybrid_nsga) {
    const std::vector<std::size_t> fronts = front_indices(evals);
    const std::vector<double> crowd = crowding_distances(evals, fronts);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (evals[a].feasible != evals[b].feasible) return evals[a].feasible;
      if (fronts[a] != fronts[b]) return fronts[a] < fronts[b];
      if (crowd[a] != crowd[b]) return crowd[a] > crowd[b];
      return evals[a].objective < evals[b].objective;
    });
  } else {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (evals[a].feasible != evals[b].feasible) return evals[a].feasible;
      return evals[a].objective < evals[b].objective;
    });
  }
  return order;
}

/// Decorrelated RNG stream per island. Island 0 keeps the raw seed so a
/// 1-island run replays the exact pre-island stream (bit-identity).
std::uint64_t island_seed(std::uint64_t seed, std::size_t island) {
  if (island == 0) return seed;
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(island);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// One island: a private sub-population with its own deterministic RNG
/// stream, evolving against the shared engine via async batches.
struct island {
  util::rng gen{0};
  std::vector<genome> population;
  std::vector<genome> outbox;  ///< elites published at the last round boundary
  std::future<std::vector<evaluation>> pending;
  engine_stats plan_delta;  ///< engine counters attributable to the pending batch
};

}  // namespace

ga_result evolve(const search_space& space, const evaluator& eval, const ga_options& opt) {
  engine_options eopt;
  eopt.threads = opt.threads;
  // GA hits come from the previous generation's survivors, so a few
  // populations' worth of entries captures nearly all reuse; bounding the
  // cache keeps long large-population runs at constant memory.
  eopt.capacity = std::max<std::size_t>(4096, 8 * opt.population);
  evaluation_engine engine{eval, eopt};
  return evolve(space, engine, opt);
}

ga_result evolve(const search_space& space, evaluation_engine& engine, const ga_options& opt) {
  if (opt.population < 4) throw std::invalid_argument("evolve: population too small");
  if (opt.elite_fraction <= 0.0 || opt.elite_fraction >= 1.0)
    throw std::invalid_argument("evolve: elite_fraction out of (0,1)");
  const std::size_t K = std::max<std::size_t>(1, opt.island.islands);
  if (K > 1 && opt.population / K < 4)
    throw std::invalid_argument("evolve: population too small for island count");
  const std::size_t M = std::max<std::size_t>(1, opt.island.migration_interval);
  const std::size_t G = opt.generations;

  const engine_stats run_start = engine.stats();
  std::size_t evictions_seen = run_start.evictions;

  // --- split the population across islands -------------------------------
  // Island 0 anchors the high-accuracy corner exactly like the classic GA
  // (static seed + mapping rotations); every other island re-seeds the
  // anchor too (duplicates are cache hits anyway) and fills randomly from
  // its own decorrelated stream.
  std::vector<island> isl(K);
  for (std::size_t i = 0; i < K; ++i) {
    const std::size_t size_i = opt.population / K + (i < opt.population % K ? 1 : 0);
    island& s = isl[i];
    s.gen = util::rng{island_seed(opt.seed, i)};
    s.population.reserve(size_i);
    s.population.push_back(space.static_seed());
    if (i == 0) {
      for (std::size_t r = 1; r < space.stages() && s.population.size() + 1 < size_i; ++r) {
        genome rotated = s.population.back();
        std::rotate(rotated.mapping.begin(), rotated.mapping.begin() + 1, rotated.mapping.end());
        s.population.push_back(std::move(rotated));
      }
    }
    while (s.population.size() < size_i) s.population.push_back(space.random(s.gen));
  }

  ga_result result;
  result.islands = K;
  result.history.resize(G);

  // --- coordinator helpers -----------------------------------------------
  // Decoding stays serial: it is O(groups x stages) arithmetic per genome,
  // orders of magnitude below one evaluator run. The async submit runs the
  // cache probe inline (so plan_delta is exact: only this coordinator
  // thread bumps hit/miss/dedup/inflight counters) and enqueues the
  // distinct misses on the engine pool.
  const auto submit = [&](island& s) {
    std::vector<configuration> configs;
    configs.reserve(s.population.size());
    for (const genome& p : s.population) configs.push_back(space.decode(p));
    const engine_stats before = engine.stats();
    s.pending = engine.evaluate_batch_async(std::move(configs));
    s.plan_delta = engine.stats() - before;
  };

  // Waits out island i's generation `gg`, folds it into history/archive and
  // returns (evaluations, ranking) for breeding.
  const auto process = [&](std::size_t i, std::size_t gg) {
    island& s = isl[i];
    std::vector<evaluation> evals = s.pending.get();
    result.total_evaluations += evals.size();

    generation_stats& hist = result.history[gg];
    hist.generation = gg;
    hist.cache_hits += s.plan_delta.hits;
    hist.cache_misses += s.plan_delta.misses;
    hist.cache_dedup += s.plan_delta.dedup;
    hist.cache_inflight += s.plan_delta.inflight;
    // Evictions happen on pool threads; attribute everything observed since
    // the previous processing step to this generation (exact for K = 1).
    const std::size_t ev_now = engine.stats().evictions;
    hist.cache_evictions += ev_now - evictions_seen;
    evictions_seen = ev_now;

    std::vector<std::size_t> order = rank_order(evals, opt);

    std::size_t feasible = 0;
    double sum = 0.0;
    for (const evaluation& e : evals) {
      if (!e.feasible) continue;
      ++feasible;
      sum += e.objective;
      result.archive.push_back(e);
    }
    if (feasible > 0) {
      const double best = evals[order.front()].objective;
      if (hist.feasible == 0 || best < hist.best_objective) hist.best_objective = best;
      hist.mean_objective += sum;  // normalized to a mean after the run
      hist.feasible += feasible;
    }
    return std::make_pair(std::move(evals), std::move(order));
  };

  // Elite selection + offspring for the next generation; optionally records
  // the island's ranked elites as outbound migrants for the ring exchange.
  const auto breed = [&](island& s, const std::vector<evaluation>& evals,
                         const std::vector<std::size_t>& order, bool capture_outbox) {
    const std::size_t island_pop = s.population.size();
    const std::size_t n_elite = std::max<std::size_t>(
        2, static_cast<std::size_t>(opt.elite_fraction * static_cast<double>(island_pop)));
    std::vector<genome> survivors;
    survivors.reserve(n_elite + opt.accuracy_elites);
    for (std::size_t r = 0; r < n_elite && r < order.size(); ++r) {
      if (!evals[order[r]].feasible) break;  // never breed from violators
      survivors.push_back(s.population[order[r]]);
    }
    if (opt.accuracy_elites > 0 && !survivors.empty()) {
      // Also protect the most accurate feasible candidates of the
      // generation (see ga_options::accuracy_elites).
      std::vector<std::size_t> by_acc = order;
      std::sort(by_acc.begin(), by_acc.end(), [&](std::size_t a, std::size_t b) {
        if (evals[a].feasible != evals[b].feasible) return evals[a].feasible;
        return evals[a].accuracy_pct > evals[b].accuracy_pct;
      });
      for (std::size_t r = 0; r < opt.accuracy_elites && r < by_acc.size(); ++r) {
        if (!evals[by_acc[r]].feasible) break;
        survivors.push_back(s.population[by_acc[r]]);
      }
    }
    // Small islands must keep breeding: survivors never fill more than half
    // the sub-population (accuracy elites, appended last, are trimmed
    // first). The single-population phases — K = 1 runs and the merged
    // polish tail — keep the exact classic behavior, preserving
    // bit-identity with the pre-island implementation.
    if (isl.size() > 1) {
      const std::size_t cap = std::max<std::size_t>(2, island_pop / 2);
      if (survivors.size() > cap) survivors.resize(cap);
    }

    s.outbox.clear();
    if (capture_outbox) {
      const std::size_t want =
          std::min(opt.island.migrants, island_pop > 1 ? island_pop - 1 : std::size_t{0});
      for (std::size_t r = 0; r < order.size() && s.outbox.size() < want; ++r) {
        if (!evals[order[r]].feasible) break;
        s.outbox.push_back(s.population[order[r]]);
      }
    }

    if (survivors.empty()) {
      // No feasible candidate yet: reseed the whole island.
      for (genome& p : s.population) p = space.random(s.gen);
      return;
    }

    std::vector<genome> next;
    next.reserve(island_pop);
    for (const genome& sv : survivors) next.push_back(sv);
    while (next.size() < island_pop) {
      genome child =
          s.gen.bernoulli(opt.crossover_prob)
              ? crossover(tournament(survivors, s.gen), tournament(survivors, s.gen), s.gen)
              : tournament(survivors, s.gen);
      mutate(child, space, opt, s.gen);
      next.push_back(std::move(child));
    }
    s.population = std::move(next);
  };

  // --- generation loop, in rounds between migration boundaries ------------
  // Within a round, islands are pipelined: after island i's generation is
  // ranked and bred, its next batch enters the engine pool immediately —
  // while islands i+1..K-1 of the current generation are still evaluating.
  // The serial rank/breed segments therefore hide behind evaluation instead
  // of leaving the pool idle between generations.
  //
  // The final `polish_fraction` of the budget runs merged: the union of the
  // island populations evolves as one population (island 0's RNG stream
  // continues), so NSGA crowding can refine the combined front.
  const double polish = std::clamp(opt.island.polish_fraction, 0.0, 1.0);
  const std::size_t merge_start =
      K > 1 ? G - std::min(G, static_cast<std::size_t>(polish * static_cast<double>(G))) : G;
  std::size_t g = 0;
  while (g < G) {
    if (isl.size() > 1 && g >= merge_start) {
      // Deterministic merge: concatenate the island populations (ring
      // order) into island 0 and keep evolving on its RNG stream.
      for (std::size_t i = 1; i < isl.size(); ++i)
        isl[0].population.insert(isl[0].population.end(), isl[i].population.begin(),
                                 isl[i].population.end());
      isl.resize(1);
    }
    const std::size_t n_islands = isl.size();
    const std::size_t round_end =
        n_islands > 1 ? std::min({G, merge_start, (g / M + 1) * M}) : G;
    for (island& s : isl) submit(s);
    for (std::size_t gg = g; gg < round_end; ++gg) {
      for (std::size_t i = 0; i < n_islands; ++i) {
        const auto [evals, order] = process(i, gg);
        if (gg + 1 == G) continue;  // final generation: rank/archive only
        const bool last_of_round = gg + 1 == round_end;
        breed(isl[i], evals, order, /*capture_outbox=*/n_islands > 1 && last_of_round);
        if (!last_of_round) submit(isl[i]);
      }
    }
    g = round_end;

    if (g < merge_start && isl.size() > 1) {
      // Ring migration: island i receives island (i-1)'s ranked elites and
      // replaces its worst offspring slots (the tail; elites sit at the
      // front of a bred population). Deterministic: outboxes are fixed by
      // each island's private stream and the exchange order is the ring.
      const std::size_t n_isl = isl.size();
      for (std::size_t i = 0; i < n_isl; ++i) {
        const std::vector<genome>& incoming = isl[(i + n_isl - 1) % n_isl].outbox;
        std::vector<genome>& pop = isl[i].population;
        const std::size_t n = std::min(
            incoming.size(), pop.size() > 1 ? pop.size() - 1 : std::size_t{0});
        for (std::size_t j = 0; j < n; ++j) pop[pop.size() - 1 - j] = incoming[j];
      }
    }
  }

  for (generation_stats& hist : result.history)
    if (hist.feasible > 0) hist.mean_objective /= static_cast<double>(hist.feasible);

  result.cache = engine.stats() - run_start;
  if (result.archive.empty())
    throw std::runtime_error("evolve: no feasible configuration found");

  // --- best + Pareto over (latency, energy, -accuracy) ----------------------
  result.best_index = 0;
  for (std::size_t i = 1; i < result.archive.size(); ++i)
    if (result.archive[i].objective < result.archive[result.best_index].objective)
      result.best_index = i;

  std::vector<std::vector<double>> points;
  points.reserve(result.archive.size());
  for (const auto& e : result.archive)
    points.push_back({e.avg_latency_ms, e.avg_energy_mj, -e.accuracy_pct});
  result.pareto = pareto_front(points);
  return result;
}

}  // namespace mapcq::core
