#include "core/evolutionary.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>

#include "core/pareto.h"
#include "core/search_strategy.h"

namespace mapcq::core {

namespace {

/// One island slot driven by the coordinator: the strategy plus the engine
/// batch currently in flight and its pre-filter bookkeeping.
struct island {
  std::unique_ptr<search_strategy> strategy;
  island_orientation orientation = island_orientation::balanced;
  std::future<std::vector<evaluation>> pending;
  engine_stats plan_delta;  ///< engine counters attributable to the pending batch
  bool filtered = false;    ///< pending batch went through the pre-filter
  std::vector<char> kept;   ///< per-candidate: advanced to the analytic engine
  std::vector<evaluation> predicted;  ///< surrogate scores, index-aligned with candidates
};

void validate_options(const ga_options& opt, std::size_t K, const candidate_prefilter* prefilter) {
  if (opt.population < 4) throw std::invalid_argument("evolve: population too small");
  if (opt.elite_fraction <= 0.0 || opt.elite_fraction >= 1.0)
    throw std::invalid_argument("evolve: elite_fraction out of (0,1)");
  if (K > 1 && opt.population / K < 4)
    throw std::invalid_argument("evolve: population too small for island count");
  const portfolio_options& pf = opt.portfolio;
  if (pf.islands.size() > K)
    throw std::invalid_argument("evolve: more portfolio assignments than islands");
  if (!(pf.sa.initial_temperature > 0.0))
    throw std::invalid_argument("evolve: sa.initial_temperature must be > 0");
  if (!(pf.sa.cooling > 0.0) || pf.sa.cooling > 1.0)
    throw std::invalid_argument("evolve: sa.cooling out of (0,1]");
  if (pf.prefilter.enabled) {
    if (prefilter == nullptr)
      throw std::invalid_argument("evolve: prefilter enabled but no scorer provided");
    if (!(pf.prefilter.quantile > 0.0) || pf.prefilter.quantile > 1.0)
      throw std::invalid_argument("evolve: prefilter.quantile out of (0,1]");
  }
}

}  // namespace

ga_result evolve(const search_space& space, const evaluator& eval, const ga_options& opt,
                 candidate_prefilter* prefilter) {
  engine_options eopt;
  eopt.threads = opt.threads;
  // GA hits come from the previous generation's survivors, so a few
  // populations' worth of entries captures nearly all reuse; bounding the
  // cache keeps long large-population runs at constant memory.
  eopt.capacity = std::max<std::size_t>(4096, 8 * opt.population);
  evaluation_engine engine{eval, eopt};
  return evolve(space, engine, opt, prefilter);
}

ga_result evolve(const search_space& space, evaluation_engine& engine, const ga_options& opt,
                 candidate_prefilter* prefilter) {
  const std::size_t K = std::max<std::size_t>(1, opt.island.islands);
  validate_options(opt, K, prefilter);
  const std::size_t M = std::max<std::size_t>(1, opt.island.migration_interval);
  const std::size_t G = opt.generations;
  const prefilter_options& pf = opt.portfolio.prefilter;

  const engine_stats run_start = engine.stats();
  std::size_t evictions_seen = run_start.evictions;

  // --- split the population across islands -------------------------------
  // Each strategy owns its sub-population and decorrelated RNG stream; the
  // initialization (static-seed anchor, island-0 mapping rotations, random
  // fill) lives behind make_island_strategy and is identical across
  // algorithms.
  std::vector<island> isl(K);
  for (std::size_t i = 0; i < K; ++i) {
    const std::size_t size_i = opt.population / K + (i < opt.population % K ? 1 : 0);
    isl[i].strategy = make_island_strategy(space, opt, i, size_i, K);
    isl[i].orientation = island_plan(opt, i).orientation;
  }

  ga_result result;
  result.islands = K;
  result.history.resize(G);

  // --- coordinator helpers -----------------------------------------------
  // Decoding stays serial: it is O(groups x stages) arithmetic per genome,
  // orders of magnitude below one evaluator run. The async submit runs the
  // cache probe inline (so plan_delta is exact: only this coordinator
  // thread bumps hit/miss/dedup/inflight counters) and enqueues the
  // distinct misses on the engine pool.
  //
  // With the pre-filter active (past its warmup), the whole proposed batch
  // is scored on the surrogate first and only the promising quantile enters
  // the analytic engine; the skipped candidates carry their predicted
  // evaluation into breeding but never into the archive or history stats.
  const auto submit = [&](island& s, std::size_t gg) {
    const std::vector<genome>& pop = s.strategy->population();
    std::vector<configuration> configs;
    configs.reserve(pop.size());
    for (const genome& p : pop) configs.push_back(space.decode(p));
    s.filtered = false;
    s.kept.clear();
    s.predicted.clear();
    if (pf.enabled && gg >= pf.warmup_generations && configs.size() > 1) {
      s.predicted = prefilter->score(configs);
      if (s.predicted.size() != configs.size())
        throw std::runtime_error("evolve: prefilter returned wrong batch size");
      std::vector<std::size_t> order(configs.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        if (s.predicted[a].feasible != s.predicted[b].feasible) return s.predicted[a].feasible;
        return s.predicted[a].objective < s.predicted[b].objective;
      });
      const std::size_t keep = std::min<std::size_t>(
          configs.size(), std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(
                                 pf.quantile * static_cast<double>(configs.size())))));
      s.kept.assign(configs.size(), 0);
      for (std::size_t r = 0; r < keep; ++r) s.kept[order[r]] = 1;
      std::vector<configuration> advancing;
      advancing.reserve(keep);
      for (std::size_t i = 0; i < configs.size(); ++i)
        if (s.kept[i]) advancing.push_back(std::move(configs[i]));
      s.filtered = true;
      const engine_stats before = engine.stats();
      s.pending = engine.evaluate_batch_async(std::move(advancing));
      s.plan_delta = engine.stats() - before;
      return;
    }
    const engine_stats before = engine.stats();
    s.pending = engine.evaluate_batch_async(std::move(configs));
    s.plan_delta = engine.stats() - before;
  };

  // Waits out island i's generation `gg`, folds it into history/archive and
  // returns (evaluations, ranking) for the strategy to observe.
  const auto process = [&](std::size_t i, std::size_t gg) {
    island& s = isl[i];
    std::vector<evaluation> got = s.pending.get();

    generation_stats& hist = result.history[gg];
    hist.generation = gg;
    hist.cache_hits += s.plan_delta.hits;
    hist.cache_misses += s.plan_delta.misses;
    hist.cache_dedup += s.plan_delta.dedup;
    hist.cache_inflight += s.plan_delta.inflight;
    // Evictions happen on pool threads; attribute everything observed since
    // the previous processing step to this generation (exact for K = 1).
    const std::size_t ev_now = engine.stats().evictions;
    hist.cache_evictions += ev_now - evictions_seen;
    evictions_seen = ev_now;

    // Splice skipped candidates' predicted evaluations back in so `evals`
    // stays index-aligned with the strategy's population. `analytic[c]`
    // marks the ground-truth entries; only those feed archive and stats.
    std::vector<evaluation> evals;
    std::vector<char> analytic;
    if (s.filtered) {
      evals.reserve(s.kept.size());
      std::size_t next = 0;
      for (std::size_t c = 0; c < s.kept.size(); ++c)
        evals.push_back(s.kept[c] ? got[next++] : s.predicted[c]);
      analytic.assign(s.kept.begin(), s.kept.end());
      hist.prefiltered += got.size();
      hist.prefilter_skipped += s.kept.size() - got.size();
    } else {
      evals = std::move(got);
      analytic.assign(evals.size(), 1);
    }
    result.total_evaluations += evals.size();

    std::vector<std::size_t> order = rank_candidates(evals, opt, s.orientation);

    std::size_t feasible = 0;
    double sum = 0.0;
    for (std::size_t c = 0; c < evals.size(); ++c) {
      if (!analytic[c] || !evals[c].feasible) continue;
      ++feasible;
      sum += evals[c].objective;
      result.archive.push_back(evals[c]);
    }
    if (feasible > 0) {
      // The generation's "best" is the top-ranked ground-truth entry (for an
      // unfiltered batch that is exactly order.front(), as it always was).
      double best = 0.0;
      for (const std::size_t r : order) {
        if (!analytic[r] || !evals[r].feasible) continue;
        best = evals[r].objective;
        break;
      }
      if (hist.feasible == 0 || best < hist.best_objective) hist.best_objective = best;
      hist.mean_objective += sum;  // normalized to a mean after the run
      hist.feasible += feasible;
    }
    return std::make_pair(std::move(evals), std::move(order));
  };

  // --- generation loop, in rounds between migration boundaries ------------
  // Within a round, islands are pipelined: after island i's generation is
  // ranked and observed, its next batch enters the engine pool immediately —
  // while islands i+1..K-1 of the current generation are still evaluating.
  // The serial rank/observe segments therefore hide behind evaluation
  // instead of leaving the pool idle between generations.
  //
  // The final `polish_fraction` of the budget runs merged: the union of the
  // island populations evolves as one NSGA-ranked GA population. When island
  // 0 already is a GA it absorbs the rest and its RNG stream continues
  // (bit-identity with the pre-portfolio merge); otherwise a fresh polish GA
  // takes over on the stream one past the last island's.
  const double polish = std::clamp(opt.island.polish_fraction, 0.0, 1.0);
  const std::size_t merge_start =
      K > 1 ? G - std::min(G, static_cast<std::size_t>(polish * static_cast<double>(G))) : G;
  std::size_t g = 0;
  while (g < G) {
    if (isl.size() > 1 && g >= merge_start) {
      // Deterministic merge: concatenate the island populations in ring
      // order into one polish GA.
      if (island_plan(opt, 0).algorithm == island_algorithm::ga) {
        std::vector<genome> merged;
        for (std::size_t i = 1; i < isl.size(); ++i) {
          std::vector<genome> part = isl[i].strategy->take_population();
          merged.insert(merged.end(), std::make_move_iterator(part.begin()),
                        std::make_move_iterator(part.end()));
        }
        isl[0].strategy->absorb(std::move(merged));
      } else {
        std::vector<genome> merged = isl[0].strategy->take_population();
        for (std::size_t i = 1; i < isl.size(); ++i) {
          std::vector<genome> part = isl[i].strategy->take_population();
          merged.insert(merged.end(), std::make_move_iterator(part.begin()),
                        std::make_move_iterator(part.end()));
        }
        isl[0].strategy = make_polish_strategy(space, opt, std::move(merged),
                                               island_seed(opt.seed, K));
      }
      isl[0].orientation = island_orientation::balanced;
      isl.resize(1);
    }
    const std::size_t n_islands = isl.size();
    const std::size_t round_end =
        n_islands > 1 ? std::min({G, merge_start, (g / M + 1) * M}) : G;
    for (island& s : isl) submit(s, g);
    for (std::size_t gg = g; gg < round_end; ++gg) {
      for (std::size_t i = 0; i < n_islands; ++i) {
        const auto [evals, order] = process(i, gg);
        if (gg + 1 == G) continue;  // final generation: rank/archive only
        const bool last_of_round = gg + 1 == round_end;
        isl[i].strategy->observe(evals, order, /*capture_outbox=*/n_islands > 1 && last_of_round);
        if (!last_of_round) submit(isl[i], gg + 1);
      }
    }
    g = round_end;

    if (g < merge_start && isl.size() > 1) {
      // Ring migration: island i receives island (i-1)'s ranked elites.
      // Deterministic: outboxes are fixed by each island's private stream
      // and the exchange order is the ring.
      const std::size_t n_isl = isl.size();
      for (std::size_t i = 0; i < n_isl; ++i)
        isl[i].strategy->immigrate(isl[(i + n_isl - 1) % n_isl].strategy->outbox());
    }
  }

  for (generation_stats& hist : result.history) {
    if (hist.feasible > 0) hist.mean_objective /= static_cast<double>(hist.feasible);
    result.prefiltered += hist.prefiltered;
    result.prefilter_skipped += hist.prefilter_skipped;
  }

  result.cache = engine.stats() - run_start;
  if (result.archive.empty())
    throw std::runtime_error("evolve: no feasible configuration found");

  // --- best + Pareto over (latency, energy, -accuracy) ----------------------
  result.best_index = 0;
  for (std::size_t i = 1; i < result.archive.size(); ++i)
    if (result.archive[i].objective < result.archive[result.best_index].objective)
      result.best_index = i;

  std::vector<std::vector<double>> points;
  points.reserve(result.archive.size());
  for (const auto& e : result.archive)
    points.push_back({e.avg_latency_ms, e.avg_energy_mj, -e.accuracy_pct});
  result.pareto = pareto_front(points);
  return result;
}

}  // namespace mapcq::core
