#include "core/evolutionary.h"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>

#include "core/pareto.h"

namespace mapcq::core {

namespace {

void mutate(genome& g, const search_space& space, const ga_options& opt, util::rng& gen) {
  const std::size_t stages = space.stages();
  for (std::size_t grp = 0; grp < g.ratio_levels.size(); ++grp) {
    if (gen.bernoulli(opt.ratio_mutation_prob)) {
      const auto s = static_cast<std::size_t>(
          gen.uniform_int(0, static_cast<std::int64_t>(stages) - 1));
      const int delta = gen.bernoulli(0.5) ? 1 : -1;
      const int lo = s == 0 ? 1 : 0;
      g.ratio_levels[grp][s] =
          std::clamp(g.ratio_levels[grp][s] + delta, lo, space.ratio_levels() - 1);
    }
    if (stages > 1 && gen.bernoulli(opt.forward_mutation_prob)) {
      const auto s = static_cast<std::size_t>(
          gen.uniform_int(0, static_cast<std::int64_t>(stages) - 2));
      g.forward[grp][s] = !g.forward[grp][s];
    }
  }
  if (gen.bernoulli(opt.mapping_swap_prob) && stages > 1) {
    const auto a = static_cast<std::size_t>(
        gen.uniform_int(0, static_cast<std::int64_t>(stages) - 1));
    const auto b = static_cast<std::size_t>(
        gen.uniform_int(0, static_cast<std::int64_t>(stages) - 1));
    std::swap(g.mapping[a], g.mapping[b]);
  }
  for (std::size_t u = 0; u < g.dvfs.size(); ++u) {
    if (!gen.bernoulli(opt.dvfs_mutation_prob)) continue;
    const auto levels = static_cast<std::int64_t>(space.plat().unit(u).dvfs.levels());
    const std::int64_t delta = gen.bernoulli(0.5) ? 1 : -1;
    const std::int64_t next =
        std::clamp<std::int64_t>(static_cast<std::int64_t>(g.dvfs[u]) + delta, 0, levels - 1);
    g.dvfs[u] = static_cast<std::size_t>(next);
  }
}

genome crossover(const genome& a, const genome& b, util::rng& gen) {
  genome child = a;
  for (std::size_t grp = 0; grp < child.ratio_levels.size(); ++grp) {
    if (gen.bernoulli(0.5)) {
      child.ratio_levels[grp] = b.ratio_levels[grp];
      child.forward[grp] = b.forward[grp];
    }
  }
  if (gen.bernoulli(0.5)) child.mapping = b.mapping;  // permutations swap atomically
  for (std::size_t u = 0; u < child.dvfs.size(); ++u)
    if (gen.bernoulli(0.5)) child.dvfs[u] = b.dvfs[u];
  return child;
}

/// Tournament of two among the ranked (ascending objective) survivors.
const genome& tournament(const std::vector<genome>& pool, util::rng& gen) {
  const auto n = static_cast<std::int64_t>(pool.size());
  const auto a = static_cast<std::size_t>(gen.uniform_int(0, n - 1));
  const auto b = static_cast<std::size_t>(gen.uniform_int(0, n - 1));
  return pool[std::min(a, b)];  // pool is sorted best-first
}

/// Non-dominated front index per candidate over (latency, energy, -acc);
/// infeasible candidates get a sentinel beyond every front.
std::vector<std::size_t> front_indices(const std::vector<evaluation>& evals) {
  constexpr std::size_t unranked = static_cast<std::size_t>(-1);
  std::vector<std::size_t> front(evals.size(), unranked);
  std::vector<std::vector<double>> pts(evals.size());
  for (std::size_t i = 0; i < evals.size(); ++i)
    pts[i] = {evals[i].avg_latency_ms, evals[i].avg_energy_mj, -evals[i].accuracy_pct};

  std::size_t assigned = 0;
  std::size_t total_feasible = 0;
  for (const auto& e : evals)
    if (e.feasible) ++total_feasible;

  // Peel fronts: at each level, collect every unassigned candidate not
  // dominated by another unassigned candidate, then assign the whole set.
  for (std::size_t level = 0; assigned < total_feasible; ++level) {
    std::vector<std::size_t> peel;
    for (std::size_t i = 0; i < evals.size(); ++i) {
      if (!evals[i].feasible || front[i] != unranked) continue;
      bool dominated = false;
      for (std::size_t j = 0; j < evals.size() && !dominated; ++j) {
        if (i == j || !evals[j].feasible || front[j] != unranked) continue;
        if (dominates(pts[j], pts[i])) dominated = true;
      }
      if (!dominated) peel.push_back(i);
    }
    for (const std::size_t i : peel) front[i] = level;
    assigned += peel.size();
  }
  for (std::size_t i = 0; i < evals.size(); ++i)
    if (front[i] == unranked) front[i] = evals.size() + 1;  // infeasible sentinel
  return front;
}

/// NSGA-II crowding distance over (latency, energy, -accuracy), computed
/// within each front. Boundary candidates get +inf so the front's extreme
/// corners (cheapest, most accurate) always survive.
std::vector<double> crowding_distances(const std::vector<evaluation>& evals,
                                       const std::vector<std::size_t>& fronts) {
  std::vector<double> dist(evals.size(), 0.0);
  const auto metric = [&](std::size_t i, int axis) {
    switch (axis) {
      case 0: return evals[i].avg_latency_ms;
      case 1: return evals[i].avg_energy_mj;
      default: return -evals[i].accuracy_pct;
    }
  };

  std::map<std::size_t, std::vector<std::size_t>> by_front;
  for (std::size_t i = 0; i < evals.size(); ++i)
    if (evals[i].feasible) by_front[fronts[i]].push_back(i);

  for (auto& [level, members] : by_front) {
    if (members.size() <= 2) {
      for (const std::size_t i : members) dist[i] = std::numeric_limits<double>::infinity();
      continue;
    }
    for (int axis = 0; axis < 3; ++axis) {
      std::sort(members.begin(), members.end(),
                [&](std::size_t a, std::size_t b) { return metric(a, axis) < metric(b, axis); });
      const double lo = metric(members.front(), axis);
      const double hi = metric(members.back(), axis);
      dist[members.front()] = std::numeric_limits<double>::infinity();
      dist[members.back()] = std::numeric_limits<double>::infinity();
      if (hi <= lo) continue;
      for (std::size_t r = 1; r + 1 < members.size(); ++r)
        dist[members[r]] +=
            (metric(members[r + 1], axis) - metric(members[r - 1], axis)) / (hi - lo);
    }
  }
  return dist;
}

}  // namespace

ga_result evolve(const search_space& space, const evaluator& eval, const ga_options& opt) {
  engine_options eopt;
  eopt.threads = opt.threads;
  // GA hits come from the previous generation's survivors, so a few
  // populations' worth of entries captures nearly all reuse; bounding the
  // cache keeps long large-population runs at constant memory.
  eopt.capacity = std::max<std::size_t>(4096, 8 * opt.population);
  evaluation_engine engine{eval, eopt};
  return evolve(space, engine, opt);
}

ga_result evolve(const search_space& space, evaluation_engine& engine, const ga_options& opt) {
  if (opt.population < 4) throw std::invalid_argument("evolve: population too small");
  if (opt.elite_fraction <= 0.0 || opt.elite_fraction >= 1.0)
    throw std::invalid_argument("evolve: elite_fraction out of (0,1)");

  util::rng gen{opt.seed};
  const engine_stats run_start = engine.stats();

  std::vector<genome> population;
  population.reserve(opt.population);
  // Anchor the high-accuracy corner with the static seed (plus mapping
  // rotations of it); fill the rest randomly.
  const genome anchor = space.static_seed();
  population.push_back(anchor);
  for (std::size_t r = 1; r < space.stages() && population.size() + 1 < opt.population; ++r) {
    genome rotated = population.back();
    std::rotate(rotated.mapping.begin(), rotated.mapping.begin() + 1, rotated.mapping.end());
    population.push_back(std::move(rotated));
  }
  while (population.size() < opt.population) population.push_back(space.random(gen));

  ga_result result;

  for (std::size_t g = 0; g < opt.generations; ++g) {
    // --- evaluate through the memoizing engine (the paper's evaluation
    // cluster): elites and duplicate offspring are served from the cache,
    // distinct misses run across the engine's worker pool. Decoding stays
    // serial: it is O(groups x stages) arithmetic per genome, orders of
    // magnitude below one evaluator run.
    std::vector<configuration> configs;
    configs.reserve(population.size());
    for (const genome& p : population) configs.push_back(space.decode(p));
    const engine_stats gen_start = engine.stats();
    std::vector<evaluation> evals = engine.evaluate_batch(configs);
    const engine_stats gen_delta = engine.stats() - gen_start;
    result.total_evaluations += population.size();

    // --- rank ----------------------------------------------------------------
    // hybrid_nsga: non-dominated front first, eq. 16 objective within a
    // front. objective_only: the paper-literal pure P ranking.
    std::vector<std::size_t> order(population.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    if (opt.selection == selection_mode::hybrid_nsga) {
      const std::vector<std::size_t> fronts = front_indices(evals);
      const std::vector<double> crowd = crowding_distances(evals, fronts);
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        if (evals[a].feasible != evals[b].feasible) return evals[a].feasible;
        if (fronts[a] != fronts[b]) return fronts[a] < fronts[b];
        if (crowd[a] != crowd[b]) return crowd[a] > crowd[b];
        return evals[a].objective < evals[b].objective;
      });
    } else {
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        if (evals[a].feasible != evals[b].feasible) return evals[a].feasible;
        return evals[a].objective < evals[b].objective;
      });
    }

    generation_stats stats;
    stats.generation = g;
    stats.cache_hits = gen_delta.hits;
    stats.cache_misses = gen_delta.misses;
    stats.cache_dedup = gen_delta.dedup;
    stats.cache_evictions = gen_delta.evictions;
    double sum = 0.0;
    for (std::size_t i = 0; i < population.size(); ++i) {
      const evaluation& e = evals[i];
      if (!e.feasible) continue;
      ++stats.feasible;
      sum += e.objective;
      result.archive.push_back(e);
    }
    if (stats.feasible > 0) {
      stats.best_objective = evals[order.front()].objective;
      stats.mean_objective = sum / static_cast<double>(stats.feasible);
    }
    result.history.push_back(stats);

    if (g + 1 == opt.generations) break;

    // --- elite selection + offspring ---------------------------------------
    const std::size_t n_elite = std::max<std::size_t>(
        2, static_cast<std::size_t>(opt.elite_fraction * static_cast<double>(opt.population)));
    std::vector<genome> survivors;
    survivors.reserve(n_elite + opt.accuracy_elites);
    for (std::size_t r = 0; r < n_elite && r < order.size(); ++r) {
      if (!evals[order[r]].feasible) break;  // never breed from violators
      survivors.push_back(population[order[r]]);
    }
    if (opt.accuracy_elites > 0 && !survivors.empty()) {
      // Also protect the most accurate feasible candidates of the
      // generation (see ga_options::accuracy_elites).
      std::vector<std::size_t> by_acc = order;
      std::sort(by_acc.begin(), by_acc.end(), [&](std::size_t a, std::size_t b) {
        if (evals[a].feasible != evals[b].feasible) return evals[a].feasible;
        return evals[a].accuracy_pct > evals[b].accuracy_pct;
      });
      for (std::size_t r = 0; r < opt.accuracy_elites && r < by_acc.size(); ++r) {
        if (!evals[by_acc[r]].feasible) break;
        survivors.push_back(population[by_acc[r]]);
      }
    }
    if (survivors.empty()) {
      // No feasible candidate yet: reseed the whole generation.
      for (auto& p : population) p = space.random(gen);
      continue;
    }

    std::vector<genome> next;
    next.reserve(opt.population);
    for (const auto& s : survivors) next.push_back(s);
    while (next.size() < opt.population) {
      genome child = gen.bernoulli(opt.crossover_prob)
                         ? crossover(tournament(survivors, gen), tournament(survivors, gen), gen)
                         : tournament(survivors, gen);
      mutate(child, space, opt, gen);
      next.push_back(std::move(child));
    }
    population = std::move(next);
  }

  result.cache = engine.stats() - run_start;
  if (result.archive.empty())
    throw std::runtime_error("evolve: no feasible configuration found");

  // --- best + Pareto over (latency, energy, -accuracy) ----------------------
  result.best_index = 0;
  for (std::size_t i = 1; i < result.archive.size(); ++i)
    if (result.archive[i].objective < result.archive[result.best_index].objective)
      result.best_index = i;

  std::vector<std::vector<double>> points;
  points.reserve(result.archive.size());
  for (const auto& e : result.archive)
    points.push_back({e.avg_latency_ms, e.avg_energy_mj, -e.accuracy_pct});
  result.pareto = pareto_front(points);
  return result;
}

}  // namespace mapcq::core
