#pragma once
// Static -> dynamic transformation (paper §III-A, Fig. 2): slices every
// partition group across the stages according to P, wires the inter-stage
// feature reuse edges according to I, attaches an exit head to each stage's
// tail, and resolves everything into a perf::stage_plan ready for the
// concurrent executor. Also derives the quality (importance coverage) each
// stage's exit sees, which drives the accuracy model.

#include <vector>

#include "core/configuration.h"
#include "nn/channel_ranking.h"
#include "nn/graph.h"
#include "nn/partition_groups.h"
#include "perf/work.h"

namespace mapcq::core {

/// The dynamic multi-exit version of a network under one configuration.
struct dynamic_network {
  perf::stage_plan plan;  ///< resolved schedule (last step per stage = exit head)

  /// q_i: importance coverage at stage i's exit -- flops-weighted geometric
  /// mean over groups of the visible importance share. A stage whose feature
  /// path is broken at any group (nothing visible) has quality 0.
  std::vector<double> stage_quality;

  /// Fraction of final-feature channels visible to each stage's exit head.
  std::vector<double> exit_visible_frac;

  double stored_fmap_bytes = 0.0;  ///< size_Pi(F, I): bytes parked for reuse
  double fmap_reuse_ratio = 0.0;   ///< share of indicator bits set
};

/// Performs the transformation. `reorder` enables importance-based channel
/// reordering (paper §V-D); disabling it is the ablation path.
/// Throws std::logic_error / std::invalid_argument on inconsistent inputs.
[[nodiscard]] dynamic_network transform(const nn::network& net,
                                        const std::vector<nn::partition_group>& groups,
                                        const nn::ranked_network& ranking,
                                        const configuration& config,
                                        const soc::platform& plat, bool reorder = true);

}  // namespace mapcq::core
