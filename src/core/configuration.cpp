#include "core/configuration.h"

#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>

#include "util/hashing.h"
#include "util/strings.h"

namespace mapcq::core {

std::size_t configuration::hash() const noexcept {
  std::size_t seed = 0xA11C0DEull;
  for (const auto& row : partition) util::hash_combine_range(seed, row);
  util::hash_combine(seed, partition.size());
  for (const auto& row : forward) util::hash_combine_range(seed, row);
  util::hash_combine(seed, forward.size());
  util::hash_combine_range(seed, mapping);
  util::hash_combine_range(seed, dvfs);
  return seed;
}

double configuration::fmap_reuse_ratio() const {
  std::size_t possible = 0;
  std::size_t set = 0;
  for (std::size_t g = 0; g < groups(); ++g) {
    for (std::size_t i = 0; i + 1 < stages(); ++i) {
      if (partition[g][i] <= 0.0) continue;  // nothing to forward
      ++possible;
      if (forward[g][i]) ++set;
    }
  }
  if (possible == 0) return 0.0;
  return static_cast<double>(set) / static_cast<double>(possible);
}

void configuration::validate(const soc::platform& plat) const {
  if (partition.empty()) throw std::logic_error("configuration: no partition groups");
  if (mapping.empty()) throw std::logic_error("configuration: no stages");
  if (forward.size() != partition.size())
    throw std::logic_error("configuration: forward/partition group mismatch");

  const std::size_t m = stages();
  for (std::size_t g = 0; g < groups(); ++g) {
    if (partition[g].size() != m || forward[g].size() != m)
      throw std::logic_error("configuration: ragged row");
    double sum = 0.0;
    for (const double p : partition[g]) {
      if (p < -1e-12 || p > 1.0 + 1e-12)
        throw std::logic_error("configuration: partition fraction out of [0,1]");
      sum += p;
    }
    if (std::abs(sum - 1.0) > 1e-6)
      throw std::logic_error("configuration: partition row must sum to 1");
    if (partition[g][0] <= 0.0)
      throw std::logic_error("configuration: stage 1 must own a nonzero slice");
  }

  std::set<std::size_t> seen;
  for (const std::size_t cu : mapping) {
    if (cu >= plat.size()) throw std::logic_error("configuration: CU index out of range");
    if (!seen.insert(cu).second)
      throw std::logic_error("configuration: mapping must be injective (eq. 7)");
  }

  if (dvfs.size() != plat.size())
    throw std::logic_error("configuration: dvfs must cover every platform unit");
  for (std::size_t u = 0; u < dvfs.size(); ++u)
    if (dvfs[u] >= plat.unit(u).dvfs.levels())
      throw std::logic_error("configuration: DVFS level out of range");
}

std::string configuration::describe(const soc::platform& plat) const {
  std::ostringstream os;
  os << "stages: ";
  for (std::size_t i = 0; i < stages(); ++i) {
    const auto& cu = plat.unit(mapping[i]);
    os << util::format("S%zu->%s@%.0fMHz ", i + 1, cu.name.c_str(),
                       cu.dvfs.frequency_mhz(dvfs[mapping[i]]));
  }
  // Mean per-stage width share across groups.
  os << "| mean widths: ";
  for (std::size_t i = 0; i < stages(); ++i) {
    double acc = 0.0;
    for (std::size_t g = 0; g < groups(); ++g) acc += partition[g][i];
    os << util::format("%.2f ", acc / static_cast<double>(groups()));
  }
  os << util::format("| reuse %.1f%%", 100.0 * fmap_reuse_ratio());
  return os.str();
}

}  // namespace mapcq::core
