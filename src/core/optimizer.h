#pragma once
// DEPRECATED one-shot facade, kept as a thin compatibility shim over
// `serving::mapping_service`. New code should talk to the service directly:
// it registers many networks/platforms, keys immutable sessions by
// (network, platform, evaluator options, ranking seed), serves requests
// synchronously (`map()`) or from a worker pool (`submit()`), and persists
// the memo cache across search, validation and repeated requests --
// everything this per-run facade used to rebuild and discard per phase.
// Everything the service supports flows through the shim untouched,
// including `ga_options::island` sharded searches.
//
// How the shim maps onto the service: the constructor builds a private
// one-network service (anonymous networks/platforms get placeholder
// registry names), `optimizer_options` is repackaged as a
// `mapping_request`, and `run()` forwards to `mapping_service::map` — so
// the paper flow (Fig. 5: train the hardware surrogate, search on it,
// validate the Pareto picks on the analytic model, select the Ours-L /
// Ours-E picks of Table II) executes inside one serving session. Repeated
// `run()` calls reuse that session: the surrogate trains once, validation
// of an analytic search is served from the search's own cache
// (`optimize_result::validation_cache`), and warm reruns cost ~zero
// evaluator runs.
//
// LEGACY PATH — caller-supplied predictor: the service refuses
// `eval.predictor` (sessions own their predictors), so an optimizer built
// with one falls back to the pre-serving per-phase flow
// (`run_with_foreign_predictor`): fresh evaluator/engine pairs per phase,
// no session, no cross-phase or cross-run cache reuse, no island
// coordination beyond what `evolve()` itself provides. It exists only so
// pre-PR-2 callers keep working; do not use it in new code.

#include <memory>
#include <optional>
#include <string>

#include "core/evaluation_engine.h"
#include "core/evaluator.h"
#include "core/evolutionary.h"
#include "core/search_space.h"
#include "surrogate/predictor.h"

namespace mapcq::serving {
class mapping_service;
}  // namespace mapcq::serving

namespace mapcq::core {

/// End-to-end options.
struct optimizer_options {
  ga_options ga;
  evaluator_options eval;
  int ratio_levels = 8;  ///< paper §V-A: 8 channel partitioning ratios

  bool use_surrogate = true;  ///< search on the GBT predictor (paper flow)
  surrogate::benchmark_options bench;
  surrogate::gbt_params gbt;

  /// Accuracy slack (points below the best Pareto accuracy) tolerated when
  /// picking the energy-/latency-oriented models.
  double ours_e_accuracy_slack = 0.75;
  double ours_l_accuracy_slack = 2.50;

  std::uint64_t ranking_seed = 0xC0FFEE;
};

/// End-to-end result.
struct optimize_result {
  ga_result search;  ///< archive/pareto from the (surrogate) search

  /// Pareto picks re-evaluated on the analytic model ("hardware").
  std::vector<evaluation> validated;
  std::size_t ours_latency_index = 0;
  std::size_t ours_energy_index = 0;

  /// Engine delta of the validation phase. Search and validation share one
  /// serving session, so when the search already ran analytically
  /// (use_surrogate = false) the Pareto picks validate as pure cache hits.
  engine_stats validation_cache;

  /// Surrogate held-out fidelity (populated when use_surrogate).
  std::optional<surrogate::hw_predictor::fidelity> surrogate_fidelity;

  [[nodiscard]] const evaluation& ours_latency() const { return validated.at(ours_latency_index); }
  [[nodiscard]] const evaluation& ours_energy() const { return validated.at(ours_energy_index); }
};

/// One search run for one network on one platform.
/// \deprecated Use serving::mapping_service, which this wraps: it serves
/// many networks, runs requests asynchronously and never throws a warm
/// cache away. The referenced network/platform must outlive the optimizer.
class optimizer {
 public:
  optimizer(const nn::network& net, const soc::platform& plat, optimizer_options opt = {});

  /// Executes surrogate training (optional), GA search and validation,
  /// blocking the calling thread end to end (the service equivalent of a
  /// synchronous `map()`). Repeated calls reuse the underlying session:
  /// the surrogate trains once and later runs are served largely from the
  /// memo cache — except on the legacy foreign-predictor path, which
  /// rebuilds engines per call.
  [[nodiscard]] optimize_result run();

  [[nodiscard]] const search_space& space() const noexcept { return space_; }

 private:
  /// LEGACY pre-serving flow for the one knob the service refuses: a
  /// caller-supplied eval.predictor (sessions own their predictors).
  /// Fresh engines per phase; no session, no cross-run reuse. Deprecated:
  /// train per-session predictors through serving::mapping_service (boot
  /// one from a serving::service_config) instead of injecting a foreign
  /// one here; this path will be removed with the last pre-PR-2 caller.
  [[deprecated(
      "legacy foreign-predictor flow; use serving::mapping_service (see "
      "serving/service_config.h) instead of a caller-supplied "
      "eval.predictor")]] [[nodiscard]] optimize_result
  run_with_foreign_predictor();

  const nn::network* net_;
  const soc::platform* plat_;
  optimizer_options opt_;
  std::string network_name_;   ///< registered name (placeholder if unnamed)
  std::string platform_name_;  ///< registered name (placeholder if unnamed)
  search_space space_;
  std::shared_ptr<serving::mapping_service> service_;  ///< owns the session
};

}  // namespace mapcq::core
