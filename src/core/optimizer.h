#pragma once
// DEPRECATED one-shot facade, kept as a thin compatibility shim over
// `serving::mapping_service`. New code should talk to the service directly:
// it registers many networks/platforms, keys immutable sessions by
// (network, platform, evaluator options, ranking seed), and persists the
// memo cache across search, validation and repeated requests -- everything
// this per-run facade used to rebuild and discard per phase.
//
// The shim still mirrors the paper flow (Fig. 5): train the hardware
// surrogate, search on it, validate the Pareto picks on the analytic
// ("measured") model, then select the latency-oriented (Ours-L) and
// energy-oriented (Ours-E) models reported in Table II. Because it now
// holds one service session across phases (and across repeated run()
// calls), validation of an analytic search is served from the search's own
// cache -- see `optimize_result::validation_cache`.

#include <memory>
#include <optional>
#include <string>

#include "core/evaluation_engine.h"
#include "core/evaluator.h"
#include "core/evolutionary.h"
#include "core/search_space.h"
#include "surrogate/predictor.h"

namespace mapcq::serving {
class mapping_service;
}  // namespace mapcq::serving

namespace mapcq::core {

/// End-to-end options.
struct optimizer_options {
  ga_options ga;
  evaluator_options eval;
  int ratio_levels = 8;  ///< paper §V-A: 8 channel partitioning ratios

  bool use_surrogate = true;  ///< search on the GBT predictor (paper flow)
  surrogate::benchmark_options bench;
  surrogate::gbt_params gbt;

  /// Accuracy slack (points below the best Pareto accuracy) tolerated when
  /// picking the energy-/latency-oriented models.
  double ours_e_accuracy_slack = 0.75;
  double ours_l_accuracy_slack = 2.50;

  std::uint64_t ranking_seed = 0xC0FFEE;
};

/// End-to-end result.
struct optimize_result {
  ga_result search;  ///< archive/pareto from the (surrogate) search

  /// Pareto picks re-evaluated on the analytic model ("hardware").
  std::vector<evaluation> validated;
  std::size_t ours_latency_index = 0;
  std::size_t ours_energy_index = 0;

  /// Engine delta of the validation phase. Search and validation share one
  /// serving session, so when the search already ran analytically
  /// (use_surrogate = false) the Pareto picks validate as pure cache hits.
  engine_stats validation_cache;

  /// Surrogate held-out fidelity (populated when use_surrogate).
  std::optional<surrogate::hw_predictor::fidelity> surrogate_fidelity;

  [[nodiscard]] const evaluation& ours_latency() const { return validated.at(ours_latency_index); }
  [[nodiscard]] const evaluation& ours_energy() const { return validated.at(ours_energy_index); }
};

/// One search run for one network on one platform. Deprecated: use
/// serving::mapping_service, which this wraps.
class optimizer {
 public:
  optimizer(const nn::network& net, const soc::platform& plat, optimizer_options opt = {});

  /// Executes surrogate training (optional), GA search and validation.
  /// Repeated calls reuse the underlying session: the surrogate trains
  /// once and later runs are served largely from the memo cache.
  [[nodiscard]] optimize_result run();

  [[nodiscard]] const search_space& space() const noexcept { return space_; }

 private:
  /// Pre-serving flow for the one legacy knob the service refuses: a
  /// caller-supplied eval.predictor (sessions own their predictors).
  [[nodiscard]] optimize_result run_with_foreign_predictor();

  const nn::network* net_;
  const soc::platform* plat_;
  optimizer_options opt_;
  std::string network_name_;   ///< registered name (placeholder if unnamed)
  std::string platform_name_;  ///< registered name (placeholder if unnamed)
  search_space space_;
  std::shared_ptr<serving::mapping_service> service_;  ///< owns the session
};

}  // namespace mapcq::core
