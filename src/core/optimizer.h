#pragma once
// Top-level Map-and-Conquer facade (paper Fig. 5): trains the hardware
// surrogate, runs the evolutionary search under the requested constraints,
// then validates the Pareto picks on the analytic ("measured") model --
// mirroring the paper's search-on-predictor / report-on-hardware flow --
// and finally selects the latency-oriented (Ours-L) and energy-oriented
// (Ours-E) models reported in Table II.

#include <memory>
#include <optional>

#include "core/evaluator.h"
#include "core/evolutionary.h"
#include "core/search_space.h"
#include "surrogate/predictor.h"

namespace mapcq::core {

/// End-to-end options.
struct optimizer_options {
  ga_options ga;
  evaluator_options eval;
  int ratio_levels = 8;  ///< paper §V-A: 8 channel partitioning ratios

  bool use_surrogate = true;  ///< search on the GBT predictor (paper flow)
  surrogate::benchmark_options bench;
  surrogate::gbt_params gbt;

  /// Accuracy slack (points below the best Pareto accuracy) tolerated when
  /// picking the energy-/latency-oriented models.
  double ours_e_accuracy_slack = 0.75;
  double ours_l_accuracy_slack = 2.50;

  std::uint64_t ranking_seed = 0xC0FFEE;
};

/// End-to-end result.
struct optimize_result {
  ga_result search;  ///< archive/pareto from the (surrogate) search

  /// Pareto picks re-evaluated on the analytic model ("hardware").
  std::vector<evaluation> validated;
  std::size_t ours_latency_index = 0;
  std::size_t ours_energy_index = 0;

  /// Surrogate held-out fidelity (populated when use_surrogate).
  std::optional<surrogate::hw_predictor::fidelity> surrogate_fidelity;

  [[nodiscard]] const evaluation& ours_latency() const { return validated.at(ours_latency_index); }
  [[nodiscard]] const evaluation& ours_energy() const { return validated.at(ours_energy_index); }
};

/// One search run for one network on one platform.
class optimizer {
 public:
  optimizer(const nn::network& net, const soc::platform& plat, optimizer_options opt = {});

  /// Executes surrogate training (optional), GA search and validation.
  [[nodiscard]] optimize_result run();

  [[nodiscard]] const search_space& space() const noexcept { return space_; }

 private:
  const nn::network* net_;
  const soc::platform* plat_;
  optimizer_options opt_;
  search_space space_;
  std::unique_ptr<surrogate::hw_predictor> predictor_;
};

}  // namespace mapcq::core
