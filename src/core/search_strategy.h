#pragma once
// Search-strategy interface: one island of the portfolio search, behind a
// uniform propose/observe contract so `core::evolve` can drive heterogeneous
// algorithms (GA islands, simulated-annealing islands) through the same
// coordinator loop — shared evaluation engine, ring migration, merged NSGA
// polish tail and all.
//
// Per generation the coordinator
//   1. reads `population()` (the candidates the strategy wants evaluated),
//   2. evaluates them through the engine (possibly pre-filtered, see
//      `candidate_prefilter` in evolutionary.h),
//   3. ranks them with `rank_candidates` under the island's orientation, and
//   4. hands the index-aligned evaluations back via `observe()`, which breeds
//      (GA) or accepts/rejects (SA) the next `population()`.
// Migration moves genomes between strategies with `outbox()`/`immigrate()`;
// the merged polish tail collects `take_population()` from every island into
// one NSGA-ranked GA (`absorb` when island 0 already is one, otherwise
// `make_polish_strategy`). See docs/ARCHITECTURE.md ("Adding a search
// engine") for a walkthrough.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/evaluator.h"
#include "core/evolutionary.h"
#include "core/search_space.h"

namespace mapcq::core {

/// One island's search algorithm behind the coordinator's propose/observe
/// loop. Implementations own their population and RNG stream; all engine
/// traffic and bookkeeping stays in the coordinator. Not thread-safe: each
/// instance is driven by the single coordinator thread.
class search_strategy {
 public:
  virtual ~search_strategy() = default;

  /// Candidates to evaluate this generation, index-aligned with the
  /// `evals`/`order` later passed to `observe()`. Stable until then.
  [[nodiscard]] virtual const std::vector<genome>& population() const = 0;

  /// Consumes this generation's evaluations (`evals[i]` belongs to
  /// `population()[i]`; `order` ranks them best-first) and prepares the next
  /// `population()`. When `capture_outbox` is set, also publishes ranked
  /// feasible elites for the ring exchange (at most
  /// `island_options::migrants`).
  virtual void observe(const std::vector<evaluation>& evals,
                       const std::vector<std::size_t>& order, bool capture_outbox) = 0;

  /// Elites published by the last `observe(..., capture_outbox=true)`.
  [[nodiscard]] virtual const std::vector<genome>& outbox() const = 0;

  /// Ring migration: `incoming` replaces this strategy's worst members (at
  /// most population-size - 1 of them).
  virtual void immigrate(const std::vector<genome>& incoming) = 0;

  /// Surrenders the current population (polish-tail merge). The strategy is
  /// dead afterwards.
  [[nodiscard]] virtual std::vector<genome> take_population() = 0;

  /// Polish-tail merge into a live strategy: appends `merged` to the current
  /// population and lifts any multi-island survivor cap, so the combined
  /// population evolves exactly like the classic single-population GA.
  virtual void absorb(std::vector<genome> merged) = 0;
};

/// Ranks candidates best-first. `balanced` uses `opt.selection` (the classic
/// hybrid-NSGA or objective-only order); `latency`/`energy` rank feasible
/// candidates by that single axis (objective breaks ties), so an oriented
/// island camps its end of the front. Infeasible candidates always sort
/// last.
[[nodiscard]] std::vector<std::size_t> rank_candidates(const std::vector<evaluation>& evals,
                                                       const ga_options& opt,
                                                       island_orientation orientation);

/// Decorrelated RNG stream per island. Island 0 keeps the raw seed so a
/// 1-island run replays the exact pre-island stream (bit-identity); the
/// merged polish strategy of an SA-led portfolio uses index K (one past the
/// last island) so it collides with no island stream.
[[nodiscard]] std::uint64_t island_seed(std::uint64_t seed, std::size_t island);

/// Resolves island `island`'s portfolio slot: the explicit
/// `ga_options::portfolio.islands` entry when one exists, otherwise the
/// default (GA, balanced) — so an empty portfolio is the homogeneous GA.
[[nodiscard]] island_assignment island_plan(const ga_options& opt, std::size_t island);

/// Builds island `island`'s strategy (algorithm per `island_plan`) with its
/// initial population of `island_size` members: the static seed anchor,
/// island 0's mapping rotations, and a random fill from the island's
/// decorrelated stream — identical across algorithms so portfolio choice
/// never perturbs initialization.
[[nodiscard]] std::unique_ptr<search_strategy> make_island_strategy(const search_space& space,
                                                                    const ga_options& opt,
                                                                    std::size_t island,
                                                                    std::size_t island_size,
                                                                    std::size_t total_islands);

/// Builds the merged polish-tail GA over an explicit population (used when
/// island 0 is not a GA): uncapped survivors, NSGA ranking per
/// `opt.selection`, RNG stream seeded by `seed`.
[[nodiscard]] std::unique_ptr<search_strategy> make_polish_strategy(const search_space& space,
                                                                    const ga_options& opt,
                                                                    std::vector<genome> population,
                                                                    std::uint64_t seed);

}  // namespace mapcq::core
