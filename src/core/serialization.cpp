#include "core/serialization.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace mapcq::core {

namespace {
constexpr const char* format_tag = "mapcq-config-v1";
}

std::string to_text(const configuration& config) {
  std::ostringstream os;
  os << format_tag << "\n";
  os << "groups " << config.groups() << "\n";
  os << "stages " << config.stages() << "\n";
  os << "partition\n";
  os.precision(17);
  for (const auto& row : config.partition) {
    for (std::size_t i = 0; i < row.size(); ++i) os << (i ? " " : "") << row[i];
    os << "\n";
  }
  os << "forward\n";
  for (const auto& row : config.forward) {
    for (std::size_t i = 0; i < row.size(); ++i) os << (i ? " " : "") << (row[i] ? 1 : 0);
    os << "\n";
  }
  os << "mapping";
  for (const std::size_t cu : config.mapping) os << ' ' << cu;
  os << "\ndvfs";
  for (const std::size_t level : config.dvfs) os << ' ' << level;
  os << "\n";
  return os.str();
}

configuration configuration_from_text(const std::string& text) {
  std::istringstream is{text};
  std::string line;

  const auto next_line = [&](const char* what) {
    if (!std::getline(is, line))
      throw std::runtime_error(std::string("configuration_from_text: missing ") + what);
    return line;
  };

  if (next_line("header") != format_tag)
    throw std::runtime_error("configuration_from_text: bad header");

  const auto read_sized = [&](const char* key) {
    std::istringstream ls{next_line(key)};
    std::string k;
    std::size_t v = 0;
    if (!(ls >> k >> v) || k != key)
      throw std::runtime_error(std::string("configuration_from_text: expected ") + key);
    return v;
  };
  const std::size_t groups = read_sized("groups");
  const std::size_t stages = read_sized("stages");
  if (groups == 0 || stages == 0)
    throw std::runtime_error("configuration_from_text: empty dimensions");

  configuration c;
  if (next_line("partition") != "partition")
    throw std::runtime_error("configuration_from_text: expected partition section");
  c.partition.assign(groups, std::vector<double>(stages));
  for (auto& row : c.partition) {
    std::istringstream ls{next_line("partition row")};
    for (auto& v : row)
      if (!(ls >> v)) throw std::runtime_error("configuration_from_text: short partition row");
  }

  if (next_line("forward") != "forward")
    throw std::runtime_error("configuration_from_text: expected forward section");
  c.forward.assign(groups, std::vector<bool>(stages));
  for (auto& row : c.forward) {
    std::istringstream ls{next_line("forward row")};
    for (std::size_t i = 0; i < stages; ++i) {
      int bit = 0;
      if (!(ls >> bit) || (bit != 0 && bit != 1))
        throw std::runtime_error("configuration_from_text: bad forward bit");
      row[i] = bit == 1;
    }
  }

  {
    std::istringstream ls{next_line("mapping")};
    std::string k;
    if (!(ls >> k) || k != "mapping")
      throw std::runtime_error("configuration_from_text: expected mapping");
    std::size_t v = 0;
    while (ls >> v) c.mapping.push_back(v);
    if (c.mapping.size() != stages)
      throw std::runtime_error("configuration_from_text: mapping size mismatch");
  }
  {
    std::istringstream ls{next_line("dvfs")};
    std::string k;
    if (!(ls >> k) || k != "dvfs")
      throw std::runtime_error("configuration_from_text: expected dvfs");
    std::size_t v = 0;
    while (ls >> v) c.dvfs.push_back(v);
    if (c.dvfs.empty()) throw std::runtime_error("configuration_from_text: empty dvfs");
  }
  return c;
}

void save_configuration(const std::string& path, const configuration& config) {
  std::ofstream out{path};
  if (!out) throw std::runtime_error("save_configuration: cannot open " + path);
  out << to_text(config);
  if (!out) throw std::runtime_error("save_configuration: write failed for " + path);
}

configuration load_configuration(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error("load_configuration: cannot open " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return configuration_from_text(buf.str());
}

}  // namespace mapcq::core
