#include "core/serialization.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <type_traits>

#include "util/strings.h"

namespace mapcq::core {

namespace {

constexpr const char* config_tag = "mapcq-config-v1";
constexpr const char* report_tag = "mapcq-report-v1";
constexpr const char* trace_tag = "mapcq-trace-v1";
constexpr const char* eval_tag = "mapcq-eval-v1";

std::string next_line(std::istream& is, const char* what) {
  std::string line;
  if (!std::getline(is, line))
    throw std::runtime_error(std::string("serialization: missing ") + what);
  return line;
}

// --- shared key/value row writer/reader ------------------------------------
// One writer for every `key v1 v2 ...` row in the formats (report entry
// scalars, scheduler/refresh counter lines, trace records) instead of the
// three hand-rolled emitters this file used to carry. Values parse
// token-wise through std::sto* so the non-finite scalars the report format
// legitimately contains ("inf" objectives of infeasible picks) round-trip —
// stream extraction refuses the "inf"/"nan" it itself printed.

template <class... Ts>
void write_row(std::ostream& os, const char* key, const Ts&... values) {
  os << key;
  ((os << ' ' << values), ...);
  os << '\n';
}

template <class T>
void parse_token(const std::string& token, T& out) {
  if constexpr (std::is_floating_point_v<T>)
    out = static_cast<T>(std::stod(token));
  else if constexpr (std::is_signed_v<T>)
    out = static_cast<T>(std::stoll(token));
  else
    out = static_cast<T>(std::stoull(token));
}

/// Parses `line` as a `key v1 v2 ...` row into `values`. Returns false on a
/// key mismatch (the caller may treat the row as optional); throws on a row
/// that matches the key but is short or non-numeric.
template <class... Ts>
bool try_parse_row(const std::string& line, const char* key, Ts&... values) {
  std::istringstream ls{line};
  std::string k;
  if (!(ls >> k) || k != key) return false;
  const auto next = [&](auto& out) {
    std::string token;
    if (!(ls >> token)) throw std::runtime_error(std::string("serialization: short row for ") + key);
    try {
      parse_token(token, out);
    } catch (const std::exception&) {
      throw std::runtime_error(std::string("serialization: bad value for ") + key);
    }
  };
  (next(values), ...);
  return true;
}

/// Reads the next line and parses it as a mandatory `key ...` row.
template <class... Ts>
void read_row(std::istream& is, const char* key, Ts&... values) {
  if (!try_parse_row(next_line(is, key), key, values...))
    throw std::runtime_error(std::string("serialization: expected ") + key);
}

/// Reads a `key value...` line and returns everything after "key " verbatim
/// (values such as network names may contain spaces).
std::string read_tail(std::istream& is, const char* key) {
  const std::string line = next_line(is, key);
  const std::string prefix = std::string(key) + ' ';
  if (line.rfind(prefix, 0) != 0) {
    if (line == key) return "";
    throw std::runtime_error(std::string("serialization: expected ") + key);
  }
  return line.substr(prefix.size());
}

std::size_t read_sized(std::istream& is, const char* key) {
  std::size_t v = 0;
  read_row(is, key, v);
  return v;
}

double read_scalar(std::istream& is, const char* key) {
  double v = 0.0;
  read_row(is, key, v);
  return v;
}

void write_configuration(std::ostream& os, const configuration& config) {
  os << config_tag << "\n";
  os << "groups " << config.groups() << "\n";
  os << "stages " << config.stages() << "\n";
  os << "partition\n";
  os.precision(17);
  for (const auto& row : config.partition) {
    for (std::size_t i = 0; i < row.size(); ++i) os << (i ? " " : "") << row[i];
    os << "\n";
  }
  os << "forward\n";
  for (const auto& row : config.forward) {
    for (std::size_t i = 0; i < row.size(); ++i) os << (i ? " " : "") << (row[i] ? 1 : 0);
    os << "\n";
  }
  os << "mapping";
  for (const std::size_t cu : config.mapping) os << ' ' << cu;
  os << "\ndvfs";
  for (const std::size_t level : config.dvfs) os << ' ' << level;
  os << "\n";
}

/// The config format is self-delimiting (the header fixes every section's
/// row count), so it can be read both standalone and embedded in a report.
configuration read_configuration(std::istream& is) {
  if (next_line(is, "header") != config_tag)
    throw std::runtime_error("configuration_from_text: bad header");

  const std::size_t groups = read_sized(is, "groups");
  const std::size_t stages = read_sized(is, "stages");
  if (groups == 0 || stages == 0)
    throw std::runtime_error("configuration_from_text: empty dimensions");

  configuration c;
  if (next_line(is, "partition") != "partition")
    throw std::runtime_error("configuration_from_text: expected partition section");
  c.partition.assign(groups, std::vector<double>(stages));
  for (auto& row : c.partition) {
    std::istringstream ls{next_line(is, "partition row")};
    for (auto& v : row)
      if (!(ls >> v)) throw std::runtime_error("configuration_from_text: short partition row");
  }

  if (next_line(is, "forward") != "forward")
    throw std::runtime_error("configuration_from_text: expected forward section");
  c.forward.assign(groups, std::vector<bool>(stages));
  for (auto& row : c.forward) {
    std::istringstream ls{next_line(is, "forward row")};
    for (std::size_t i = 0; i < stages; ++i) {
      int bit = 0;
      if (!(ls >> bit) || (bit != 0 && bit != 1))
        throw std::runtime_error("configuration_from_text: bad forward bit");
      row[i] = bit == 1;
    }
  }

  {
    std::istringstream ls{next_line(is, "mapping")};
    std::string k;
    if (!(ls >> k) || k != "mapping")
      throw std::runtime_error("configuration_from_text: expected mapping");
    std::size_t v = 0;
    while (ls >> v) c.mapping.push_back(v);
    if (c.mapping.size() != stages)
      throw std::runtime_error("configuration_from_text: mapping size mismatch");
  }
  {
    std::istringstream ls{next_line(is, "dvfs")};
    std::string k;
    if (!(ls >> k) || k != "dvfs")
      throw std::runtime_error("configuration_from_text: expected dvfs");
    std::size_t v = 0;
    while (ls >> v) c.dvfs.push_back(v);
    if (c.dvfs.empty()) throw std::runtime_error("configuration_from_text: empty dvfs");
  }
  return c;
}

std::string slurp(const std::string& path, const char* what) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error(std::string(what) + ": cannot open " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void spill(const std::string& path, const std::string& text, const char* what) {
  std::ofstream out{path};
  if (!out) throw std::runtime_error(std::string(what) + ": cannot open " + path);
  out << text;
  if (!out) throw std::runtime_error(std::string(what) + ": write failed for " + path);
}

}  // namespace

std::string to_text(const configuration& config) {
  std::ostringstream os;
  write_configuration(os, config);
  return os.str();
}

configuration configuration_from_text(const std::string& text) {
  std::istringstream is{text};
  return read_configuration(is);
}

void save_configuration(const std::string& path, const configuration& config) {
  spill(path, to_text(config), "save_configuration");
}

configuration load_configuration(const std::string& path) {
  return configuration_from_text(slurp(path, "load_configuration"));
}

std::string to_text(const report_summary& summary) {
  std::ostringstream os;
  os.precision(17);
  os << report_tag << "\n";
  os << "network " << summary.network << "\n";
  os << "platform " << summary.platform << "\n";
  os << "ours_latency " << summary.ours_latency_index << "\n";
  os << "ours_energy " << summary.ours_energy_index << "\n";
  if (summary.scheduler) {
    const scheduler_note& n = *summary.scheduler;
    write_row(os, "scheduler", n.submitted, n.admitted, n.coalesced, n.rejected, n.expired,
              n.completed, n.failed, n.fused, n.fused_batches);
  }
  if (summary.refresh) {
    const refresh_note& n = *summary.refresh;
    write_row(os, "refresh", n.observed, n.logged, n.attempts, n.promotions, n.rejections, n.epoch,
              n.last_candidate_tau, n.last_incumbent_tau);
  }
  if (summary.scenario) {
    const scenario_note& n = *summary.scenario;
    write_row(os, "scenario", n.residents, n.reserved_units, n.dvfs_capped_units,
              n.resident_interconnect_gbps, n.resident_dram_gbps, n.resident_power_w, n.ambient_c,
              n.throttle_c);
  }
  write_row(os, "entries", summary.entries.size());
  for (const summary_entry& e : summary.entries) {
    os << "entry " << e.label << "\n";
    write_row(os, "feasible", e.feasible ? 1 : 0);
    write_row(os, "objective", e.objective);
    write_row(os, "avg_latency_ms", e.avg_latency_ms);
    write_row(os, "avg_energy_mj", e.avg_energy_mj);
    write_row(os, "accuracy_pct", e.accuracy_pct);
    write_row(os, "fmap_reuse_pct", e.fmap_reuse_pct);
    write_configuration(os, e.config);
  }
  return os.str();
}

report_summary report_summary_from_text(const std::string& text) {
  std::istringstream is{text};
  if (next_line(is, "header") != report_tag)
    throw std::runtime_error("report_summary_from_text: bad header");

  report_summary s;
  s.network = read_tail(is, "network");
  s.platform = read_tail(is, "platform");
  s.ours_latency_index = read_sized(is, "ours_latency");
  s.ours_energy_index = read_sized(is, "ours_energy");

  // The scheduler, refresh and scenario lines are optional: direct-map()
  // artifacts (and files from before each existed) go straight to the
  // entries section. When present the order is scheduler, refresh, scenario.
  std::string line = next_line(is, "entries");
  {
    // The scheduler row grew fused counters (7 -> 9 values); both arities
    // parse so pre-extension report artifacts keep loading, with the fused
    // fields defaulting to 0 on legacy rows.
    std::istringstream ls{line};
    std::string k;
    if ((ls >> k) && k == "scheduler") {
      std::vector<std::string> tokens;
      std::string token;
      while (ls >> token) tokens.push_back(token);
      if (tokens.size() != 7 && tokens.size() != 9)
        throw std::runtime_error("serialization: bad scheduler row");
      scheduler_note note;
      std::uint64_t* const fields[] = {&note.submitted, &note.admitted, &note.coalesced,
                                       &note.rejected,  &note.expired,  &note.completed,
                                       &note.failed,    &note.fused,    &note.fused_batches};
      for (std::size_t i = 0; i < tokens.size(); ++i) {
        try {
          parse_token(tokens[i], *fields[i]);
        } catch (const std::exception&) {
          throw std::runtime_error("serialization: bad value for scheduler");
        }
      }
      s.scheduler = note;
      line = next_line(is, "entries");
    }
  }
  {
    refresh_note note;
    if (try_parse_row(line, "refresh", note.observed, note.logged, note.attempts, note.promotions,
                      note.rejections, note.epoch, note.last_candidate_tau,
                      note.last_incumbent_tau)) {
      s.refresh = note;
      line = next_line(is, "entries");
    }
  }
  {
    // Optional co-location scenario line (format extension, after refresh).
    scenario_note note;
    if (try_parse_row(line, "scenario", note.residents, note.reserved_units,
                      note.dvfs_capped_units, note.resident_interconnect_gbps,
                      note.resident_dram_gbps, note.resident_power_w, note.ambient_c,
                      note.throttle_c)) {
      s.scenario = note;
      line = next_line(is, "entries");
    }
  }
  std::size_t n = 0;
  if (!try_parse_row(line, "entries", n))
    throw std::runtime_error("serialization: expected entries");
  if (n == 0) throw std::runtime_error("report_summary_from_text: empty report");
  if (s.ours_latency_index >= n || s.ours_energy_index >= n)
    throw std::runtime_error("report_summary_from_text: pick index out of range");

  s.entries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    summary_entry e;
    e.label = read_tail(is, "entry");
    e.feasible = read_sized(is, "feasible") != 0;
    e.objective = read_scalar(is, "objective");
    e.avg_latency_ms = read_scalar(is, "avg_latency_ms");
    e.avg_energy_mj = read_scalar(is, "avg_energy_mj");
    e.accuracy_pct = read_scalar(is, "accuracy_pct");
    e.fmap_reuse_pct = read_scalar(is, "fmap_reuse_pct");
    e.config = read_configuration(is);
    s.entries.push_back(std::move(e));
  }
  return s;
}

void save_report_summary(const std::string& path, const report_summary& summary) {
  spill(path, to_text(summary), "save_report_summary");
}

report_summary load_report_summary(const std::string& path) {
  return report_summary_from_text(slurp(path, "load_report_summary"));
}

std::string to_text(const std::vector<trace_record>& trace) {
  std::ostringstream os;
  os << trace_tag << "\n";
  write_row(os, "records", trace.size());
  for (const trace_record& r : trace) {
    write_row(os, "record", r.arrival_us, r.priority, r.deadline_ms);
    // Lanes and fingerprints may contain spaces (never newlines — both are
    // single-line by construction), so each gets its own tail-form line.
    os << "lane " << r.lane << "\n";
    os << "fingerprint " << r.fingerprint << "\n";
  }
  return os.str();
}

std::vector<trace_record> trace_from_text(const std::string& text) {
  std::istringstream is{text};
  if (next_line(is, "header") != trace_tag)
    throw std::runtime_error("trace_from_text: bad header");
  const std::size_t n = read_sized(is, "records");
  std::vector<trace_record> trace;
  trace.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    trace_record r;
    read_row(is, "record", r.arrival_us, r.priority, r.deadline_ms);
    r.lane = read_tail(is, "lane");
    r.fingerprint = read_tail(is, "fingerprint");
    trace.push_back(std::move(r));
  }
  return trace;
}

void save_trace(const std::string& path, const std::vector<trace_record>& trace) {
  spill(path, to_text(trace), "save_trace");
}

std::vector<trace_record> load_trace(const std::string& path) {
  return trace_from_text(slurp(path, "load_trace"));
}

namespace {

/// One length-prefixed vector row: `key n v1 .. vn`. Self-delimiting so the
/// eval block needs no section markers.
void write_vector_row(std::ostream& os, const char* key, const std::vector<double>& v) {
  os << key << ' ' << v.size();
  for (const double x : v) os << ' ' << x;
  os << '\n';
}

std::vector<double> read_vector_row(std::istream& is, const char* key) {
  std::istringstream ls{next_line(is, key)};
  std::string k;
  if (!(ls >> k) || k != key)
    throw std::runtime_error(std::string("serialization: expected ") + key);
  std::size_t n = 0;
  if (!(ls >> n)) throw std::runtime_error(std::string("serialization: short row for ") + key);
  std::vector<double> v(n);
  for (double& x : v) {
    std::string token;
    if (!(ls >> token)) throw std::runtime_error(std::string("serialization: short row for ") + key);
    try {
      parse_token(token, x);
    } catch (const std::exception&) {
      throw std::runtime_error(std::string("serialization: bad value for ") + key);
    }
  }
  return v;
}

}  // namespace

void write_evaluation(std::ostream& os, const evaluation& e) {
  os.precision(17);
  os << eval_tag << "\n";
  write_row(os, "feasible", e.feasible ? 1 : 0);
  os << "reject_reason " << e.reject_reason << "\n";
  write_row(os, "objective", e.objective);
  write_row(os, "avg_latency_ms", e.avg_latency_ms);
  write_row(os, "avg_energy_mj", e.avg_energy_mj);
  write_row(os, "worst_latency_ms", e.worst_latency_ms);
  write_row(os, "worst_energy_mj", e.worst_energy_mj);
  write_row(os, "accuracy_pct", e.accuracy_pct);
  write_row(os, "last_stage_accuracy_pct", e.last_stage_accuracy_pct);
  write_row(os, "fmap_reuse_pct", e.fmap_reuse_pct);
  write_row(os, "stored_fmap_bytes", e.stored_fmap_bytes);
  write_row(os, "fmap_traffic_bytes", e.fmap_traffic_bytes);
  write_vector_row(os, "stage_latency_ms", e.stage_latency_ms);
  write_vector_row(os, "stage_energy_mj", e.stage_energy_mj);
  write_vector_row(os, "stage_accuracy_pct", e.stage_accuracy_pct);
  write_vector_row(os, "exit_fractions", e.exit_fractions);
  write_configuration(os, e.config);
}

evaluation read_evaluation(std::istream& is) {
  if (next_line(is, "header") != eval_tag)
    throw std::runtime_error("read_evaluation: bad header");
  evaluation e;
  e.feasible = read_sized(is, "feasible") != 0;
  e.reject_reason = read_tail(is, "reject_reason");
  e.objective = read_scalar(is, "objective");
  e.avg_latency_ms = read_scalar(is, "avg_latency_ms");
  e.avg_energy_mj = read_scalar(is, "avg_energy_mj");
  e.worst_latency_ms = read_scalar(is, "worst_latency_ms");
  e.worst_energy_mj = read_scalar(is, "worst_energy_mj");
  e.accuracy_pct = read_scalar(is, "accuracy_pct");
  e.last_stage_accuracy_pct = read_scalar(is, "last_stage_accuracy_pct");
  e.fmap_reuse_pct = read_scalar(is, "fmap_reuse_pct");
  e.stored_fmap_bytes = read_scalar(is, "stored_fmap_bytes");
  e.fmap_traffic_bytes = read_scalar(is, "fmap_traffic_bytes");
  e.stage_latency_ms = read_vector_row(is, "stage_latency_ms");
  e.stage_energy_mj = read_vector_row(is, "stage_energy_mj");
  e.stage_accuracy_pct = read_vector_row(is, "stage_accuracy_pct");
  e.exit_fractions = read_vector_row(is, "exit_fractions");
  e.config = read_configuration(is);
  return e;
}

}  // namespace mapcq::core
