#include "core/evaluator.h"

#include <algorithm>
#include <cmath>

#include "core/objective.h"
#include "perf/batch_characterizer.h"
#include "perf/characterizer.h"
#include "util/strings.h"

namespace mapcq::core {

namespace {

std::vector<std::int64_t> widths_of(const std::vector<nn::partition_group>& groups) {
  std::vector<std::int64_t> w;
  w.reserve(groups.size());
  for (const auto& g : groups) w.push_back(g.width);
  return w;
}

/// Builds the per-step cost grid from the GBT surrogate.
perf::step_costs predict_costs(const perf::stage_plan& plan, const soc::platform& plat,
                               const surrogate::hw_predictor& predictor) {
  const std::size_t concurrency = plan.active_stages();
  perf::step_costs costs;
  costs.tau_ms.assign(plan.stages(), std::vector<double>(plan.groups(), 0.0));
  costs.energy_mj.assign(plan.stages(), std::vector<double>(plan.groups(), 0.0));
  for (std::size_t i = 0; i < plan.stages(); ++i) {
    const soc::compute_unit& cu = plat.unit(plan.cu_of_stage[i]);
    const std::size_t level = plan.dvfs_level[plan.cu_of_stage[i]];
    for (std::size_t j = 0; j < plan.groups(); ++j) {
      const auto& cost = plan.steps[i][j].cost;
      if (cost.empty()) continue;
      costs.tau_ms[i][j] = predictor.latency_ms(cost, cu, level, concurrency);
      costs.energy_mj[i][j] = predictor.energy_mj(cost, cu, level, concurrency);
    }
  }
  return costs;
}

/// Exit outcome of a static (single-exit) deployment: every sample runs all
/// stages; the last exit classifies.
data::exit_outcome static_exits(double last_acc_pct, std::size_t stages,
                                std::size_t population) {
  data::exit_outcome out;
  out.population = population;
  out.correct_counts.assign(stages, 0);
  out.exit_fractions.assign(stages, 0.0);
  out.exit_fractions.back() = 1.0;
  out.correct_counts.back() = static_cast<std::size_t>(
      std::llround(last_acc_pct / 100.0 * static_cast<double>(population)));
  out.dynamic_accuracy_pct = last_acc_pct;
  return out;
}

}  // namespace

evaluator::evaluator(const nn::network& net, const soc::platform& plat, evaluator_options opt,
                     std::uint64_t ranking_seed)
    : net_(&net),
      plat_(&plat),
      opt_(opt),
      groups_(nn::make_partition_groups(net)),
      ranking_(net, widths_of(groups_), ranking_seed),
      acc_params_(data::accuracy_params::from(net)) {
  net.validate();
  plat.validate();
  if (opt_.population == 0) throw std::invalid_argument("evaluator: empty population");
  if (opt_.limits.fmap_reuse_cap < 0.0 || opt_.limits.fmap_reuse_cap > 1.0)
    throw std::invalid_argument("evaluator: fmap_reuse_cap out of [0,1]");
  opt_.contention.validate(plat);
  if (!opt_.contention.residents.empty())
    contended_plat_ = soc::apply_contention(plat, opt_.contention);
}

void evaluator::apply_dvfs_caps(perf::stage_plan& plan) const {
  const std::vector<std::size_t>& cap = opt_.contention.dvfs_cap;
  if (cap.empty()) return;
  const std::size_t n = std::min(cap.size(), plan.dvfs_level.size());
  for (std::size_t u = 0; u < n; ++u)
    plan.dvfs_level[u] = std::min(plan.dvfs_level[u], cap[u]);
}

evaluation evaluator::evaluate(const configuration& config) const {
  dynamic_network dyn = transform(*net_, groups_, ranking_, config, *plat_, opt_.reorder);
  apply_dvfs_caps(dyn.plan);
  const soc::platform& plat = sim_plat();

  // --- hardware simulation (analytic or surrogate) ------------------------
  const perf::execution_result exec =
      opt_.predictor != nullptr
          ? perf::simulate_costed(plat, dyn.plan,
                                  predict_costs(dyn.plan, plat, *opt_.predictor))
          : perf::simulate(plat, dyn.plan, opt_.model);
  const perf::dynamic_profile profile =
      opt_.count_idle_power ? perf::characterize_system(exec, dyn.plan, plat, scenario_ctx())
                            : perf::characterize(exec);
  return finish(config, dyn, exec, profile);
}

std::vector<evaluation> evaluator::evaluate_batch(
    std::span<const configuration* const> configs) const {
  std::vector<evaluation> out;
  out.reserve(configs.size());
  if (opt_.predictor != nullptr) {
    // Surrogate costs come from per-cell GBT queries; there is no batched
    // form, so this path is the scalar pipeline verbatim.
    for (const configuration* config : configs) out.push_back(evaluate(*config));
    return out;
  }

  // SoA-characterize bounded chunks rather than the whole batch at once:
  // keeping only a handful of dynamic_networks live preserves the cache
  // locality the scalar loop gets from freeing each one immediately, while
  // the flat tau/energy loop still amortizes over a chunk. Per-plan results
  // are independent, so the chunk size cannot affect bit-identity. The
  // characterizer is per-call (arena scratch is mutable; the evaluator
  // stays const/thread-safe) and its arena capacity persists across chunks.
  constexpr std::size_t kChunk = 16;
  perf::batch_characterizer characterizer{sim_plat(), opt_.model, scenario_ctx()};
  std::vector<dynamic_network> dyns;
  std::vector<const perf::stage_plan*> plans;
  std::vector<perf::batch_profile> profiles;
  for (std::size_t base = 0; base < configs.size(); base += kChunk) {
    const std::size_t n = std::min(kChunk, configs.size() - base);
    dyns.clear();
    plans.clear();
    for (std::size_t k = 0; k < n; ++k) {
      dyns.push_back(
          transform(*net_, groups_, ranking_, *configs[base + k], *plat_, opt_.reorder));
      apply_dvfs_caps(dyns.back().plan);
    }
    for (const dynamic_network& dyn : dyns) plans.push_back(&dyn.plan);
    profiles.assign(n, {});
    characterizer.run(plans, opt_.count_idle_power, profiles);
    for (std::size_t k = 0; k < n; ++k)
      out.push_back(finish(*configs[base + k], dyns[k], profiles[k].exec, profiles[k].profile));
  }
  return out;
}

evaluation evaluator::finish(const configuration& config, const dynamic_network& dyn,
                             const perf::execution_result& exec,
                             const perf::dynamic_profile& profile) const {
  evaluation ev;
  ev.config = config;
  ev.fmap_reuse_pct = 100.0 * dyn.fmap_reuse_ratio;
  ev.stored_fmap_bytes = dyn.stored_fmap_bytes;
  ev.fmap_traffic_bytes = exec.fmap_traffic_bytes;

  const std::size_t m = exec.stages.size();
  ev.stage_latency_ms.resize(m);
  ev.stage_energy_mj.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    ev.stage_latency_ms[i] = exec.stages[i].latency_ms;
    ev.stage_energy_mj[i] = exec.stages[i].energy_mj;
  }

  // --- accuracy + exits ----------------------------------------------------
  ev.stage_accuracy_pct = data::stage_accuracies_pct(acc_params_, dyn.stage_quality);
  ev.last_stage_accuracy_pct = ev.stage_accuracy_pct.back();

  const data::exit_outcome exits =
      opt_.dynamic_exits
          ? data::simulate_ideal(ev.stage_accuracy_pct, opt_.population)
          : static_exits(ev.last_stage_accuracy_pct, m, opt_.population);
  ev.exit_fractions = exits.exit_fractions;
  ev.accuracy_pct = exits.dynamic_accuracy_pct;

  ev.avg_latency_ms = profile.avg_latency_ms(ev.exit_fractions);
  ev.avg_energy_mj = profile.avg_energy_mj(ev.exit_fractions);
  ev.worst_latency_ms = profile.worst_latency_ms();
  ev.worst_energy_mj = profile.worst_energy_mj();

  // --- objective (eq. 16) ---------------------------------------------------
  objective_inputs in;
  in.base_accuracy_pct = net_->base_accuracy;
  in.stage_latency_ms = ev.stage_latency_ms;
  in.cumulative_energy_mj = profile.energy_upto;
  in.stage_accuracy_pct = ev.stage_accuracy_pct;
  in.exits = &exits;
  ev.objective = objective_value(in);

  // --- constraint filter (eq. 15) -------------------------------------------
  const auto reject = [&](const std::string& why) {
    ev.feasible = false;
    if (!ev.reject_reason.empty()) ev.reject_reason += "; ";
    ev.reject_reason += why;
  };
  if (dyn.fmap_reuse_ratio > opt_.limits.fmap_reuse_cap + 1e-9)
    reject(util::format("fmap reuse %.1f%% exceeds cap %.1f%%", 100.0 * dyn.fmap_reuse_ratio,
                        100.0 * opt_.limits.fmap_reuse_cap));
  if (dyn.stored_fmap_bytes > plat_->shared_memory_bytes)
    reject(util::format("stored fmaps %.0f B exceed shared memory %.0f B",
                        dyn.stored_fmap_bytes, plat_->shared_memory_bytes));
  if (ev.avg_latency_ms >= opt_.limits.latency_target_ms)
    reject(util::format("latency %.2f ms exceeds target", ev.avg_latency_ms));
  if (ev.avg_energy_mj >= opt_.limits.energy_target_mj)
    reject(util::format("energy %.2f mJ exceeds target", ev.avg_energy_mj));
  if (opt_.thermal && ev.avg_latency_ms > 0.0) {
    const double sustained_w = ev.avg_energy_mj / ev.avg_latency_ms;  // mJ/ms = W
    if (opt_.thermal->throttles(sustained_w))
      reject(util::format("sustained %.2f W trips the %.0f C throttle", sustained_w,
                          opt_.thermal->throttle_c));
  }
  // --- co-location scenario constraints (idle context: branch-only skip) ----
  const soc::contention_context& scen = opt_.contention;
  if (!scen.idle()) {
    for (std::size_t i = 0; i < dyn.plan.cu_of_stage.size(); ++i) {
      const std::size_t u = dyn.plan.cu_of_stage[i];
      if (!scen.unit_reserved(u)) continue;
      // A stage owning no work never executes, so it may nominally sit on
      // a reserved CU (the M permutation always covers every unit).
      const bool active = std::any_of(dyn.plan.steps[i].begin(), dyn.plan.steps[i].end(),
                                      [](const perf::stage_step& s) { return !s.cost.empty(); });
      if (active)
        reject(util::format("stage %u mapped to CU %u reserved by a co-resident",
                            static_cast<unsigned>(i), static_cast<unsigned>(u)));
    }
    const double resident_bytes = scen.total_shared_memory_bytes();
    if (resident_bytes > 0.0 &&
        dyn.stored_fmap_bytes > plat_->shared_memory_bytes - resident_bytes)
      reject(util::format("stored fmaps %.0f B exceed the %.0f B left by co-residents",
                          dyn.stored_fmap_bytes, plat_->shared_memory_bytes - resident_bytes));
    if (scen.thermal && ev.avg_latency_ms > 0.0) {
      const double sustained_w = ev.avg_energy_mj / ev.avg_latency_ms + scen.total_power_w();
      if (scen.thermal->throttles(sustained_w))
        reject(util::format("sustained %.2f W (with co-residents) trips the %.0f C throttle",
                            sustained_w, scen.thermal->throttle_c));
    }
  }
  if (!std::isfinite(ev.objective)) reject("degenerate objective");

  return ev;
}

}  // namespace mapcq::core
