#include "core/dynamic_transform.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/multi_exit.h"

namespace mapcq::core {

namespace {

/// Sum of forwarded predecessor fractions of group `g` visible to stage `i`.
double reused_fraction(const configuration& c, std::size_t g, std::size_t i) {
  double frac = 0.0;
  for (std::size_t k = 0; k < i; ++k)
    if (c.forward[g][k]) frac += c.partition[g][k];
  return frac;
}

}  // namespace

dynamic_network transform(const nn::network& net,
                          const std::vector<nn::partition_group>& groups,
                          const nn::ranked_network& ranking, const configuration& config,
                          const soc::platform& plat, bool reorder) {
  config.validate(plat);
  if (groups.size() != config.groups())
    throw std::invalid_argument("transform: group count mismatch");
  if (ranking.groups() != groups.size())
    throw std::invalid_argument("transform: ranking profile count mismatch");

  const std::size_t n_stages = config.stages();
  const std::size_t n_groups = groups.size();

  dynamic_network dyn;
  dyn.plan.steps.assign(n_stages, std::vector<perf::stage_step>(n_groups + 1));
  dyn.plan.cu_of_stage = config.mapping;
  dyn.plan.dvfs_level = config.dvfs;
  dyn.fmap_reuse_ratio = config.fmap_reuse_ratio();

  // --- body steps ---------------------------------------------------------
  for (std::size_t g = 0; g < n_groups; ++g) {
    const nn::partition_group& grp = groups[g];
    const nn::layer& lead = net.layers[grp.lead];

    for (std::size_t i = 0; i < n_stages; ++i) {
      perf::stage_step& step = dyn.plan.steps[i][g];
      const double out_frac = config.partition[g][i];
      if (out_frac <= 0.0) continue;  // stage holds no units of this group

      // Visible input features: the stage's own slice of the previous
      // group's output plus every forwarded predecessor slice. The first
      // group consumes the network input, which every stage can read.
      double own_in = 1.0;
      double reused_in = 0.0;
      if (g > 0) {
        own_in = config.partition[g - 1][i];
        reused_in = reused_fraction(config, g - 1, i);
      }
      const double in_frac = std::min(1.0, own_in + reused_in);

      perf::sublayer_cost& cost = step.cost;
      cost.kind = lead.kind;
      cost.width_frac = out_frac;
      cost.flops = lead.flops(in_frac, out_frac);
      cost.weight_bytes = lead.weight_bytes(in_frac, out_frac);
      cost.out_bytes = grp.output_bytes(net, out_frac);
      cost.in_bytes = g == 0 ? net.input.bytes()
                             : groups[g - 1].output_bytes(net, std::min(1.0, in_frac));
      for (std::size_t m = 1; m < grp.members.size(); ++m) {
        const nn::layer& member = net.layers[grp.members[m]];
        cost.flops += member.flops(1.0, out_frac);
        cost.weight_bytes += member.weight_bytes(1.0, out_frac);
      }

      // Cross-stage feature transfers (the I matrix column of group g-1).
      if (g > 0) {
        for (std::size_t k = 0; k < i; ++k) {
          if (!config.forward[g - 1][k]) continue;
          const double src_frac = config.partition[g - 1][k];
          if (src_frac <= 0.0) continue;
          step.incoming.push_back(
              {k, groups[g - 1].output_bytes(net, src_frac)});
        }
      }
    }
  }

  // --- exit heads (step n_groups) -----------------------------------------
  const nn::partition_group& last_grp = groups.back();
  const nn::tensor_shape feat_shape = net.layers[last_grp.members.back()].output();
  dyn.exit_visible_frac.assign(n_stages, 0.0);
  for (std::size_t i = 0; i < n_stages; ++i) {
    const double visible =
        std::min(1.0, config.partition[n_groups - 1][i] + reused_fraction(config, n_groups - 1, i));
    dyn.exit_visible_frac[i] = visible;
    if (visible <= 0.0) continue;

    const nn::exit_head head = nn::make_exit_head(feat_shape, net.classes);
    perf::stage_step& step = dyn.plan.steps[i][n_groups];
    perf::sublayer_cost& cost = step.cost;
    cost.kind = nn::layer_kind::classifier;
    cost.width_frac = 1.0;  // heads are tiny; occupancy derate is meaningless
    cost.flops = head.pool.flops(1.0, visible) + head.fc.flops(visible, 1.0);
    cost.weight_bytes = head.fc.weight_bytes(visible, 1.0);
    cost.in_bytes = feat_shape.bytes(visible);
    cost.out_bytes = head.fc.output_bytes(1.0);

    for (std::size_t k = 0; k < i; ++k) {
      if (!config.forward[n_groups - 1][k]) continue;
      const double src_frac = config.partition[n_groups - 1][k];
      if (src_frac <= 0.0) continue;
      step.incoming.push_back({k, last_grp.output_bytes(net, src_frac)});
    }
  }

  // --- stage quality (importance coverage at the exit) ---------------------
  // Flops-weighted geometric mean over groups of the visible importance
  // share; a group with nothing visible breaks the feature path (q -> 0).
  std::vector<double> weights(n_groups, 0.0);
  double total_w = 0.0;
  for (std::size_t g = 0; g < n_groups; ++g) {
    weights[g] = net.layers[groups[g].lead].flops();
    total_w += weights[g];
  }
  dyn.stage_quality.assign(n_stages, 0.0);
  for (std::size_t i = 0; i < n_stages; ++i) {
    double log_q = 0.0;
    bool broken = false;
    for (std::size_t g = 0; g < n_groups; ++g) {
      const double v = nn::visible_importance(ranking.profile(g), config.partition[g],
                                              config.forward[g], i, reorder);
      if (v <= 0.0) {
        broken = true;
        break;
      }
      log_q += weights[g] / total_w * std::log(v);
    }
    dyn.stage_quality[i] = broken ? 0.0 : std::exp(log_q);
  }

  // --- shared-memory footprint of parked features --------------------------
  for (std::size_t g = 0; g < n_groups; ++g)
    for (std::size_t k = 0; k + 1 < n_stages; ++k)
      if (config.forward[g][k] && config.partition[g][k] > 0.0)
        dyn.stored_fmap_bytes += groups[g].output_bytes(net, config.partition[g][k]);

  dyn.plan.validate(plat.size());
  return dyn;
}

}  // namespace mapcq::core
