#pragma once
// Candidate evaluation pipeline (paper Fig. 5, "Evaluate" + "Const. Filter"
// boxes): configuration -> dynamic transform -> hardware simulation
// (analytic model or GBT surrogate) -> accuracy/exit simulation ->
// objective (eq. 16) + constraint verdict (eq. 15).

#include <limits>
#include <span>
#include <string>
#include <vector>

#include "core/configuration.h"
#include "core/dynamic_transform.h"
#include "data/accuracy_model.h"
#include "data/exit_simulator.h"
#include "nn/channel_ranking.h"
#include "nn/graph.h"
#include "nn/partition_groups.h"
#include <optional>

#include "perf/characterizer.h"
#include "perf/concurrent_executor.h"
#include "soc/contention.h"
#include "soc/platform.h"
#include "soc/thermal.h"
#include "surrogate/predictor.h"

namespace mapcq::core {

/// Search constraints (paper eq. 15). Defaults are unconstrained except the
/// shared-memory budget, which always applies (it is physical).
struct constraints {
  double latency_target_ms = std::numeric_limits<double>::infinity();  ///< T_TRG
  double energy_target_mj = std::numeric_limits<double>::infinity();   ///< E_TRG
  double fmap_reuse_cap = 1.0;  ///< §VI-B: 0.75 / 0.50 reuse regimes
};

/// Evaluation pipeline options.
struct evaluator_options {
  std::size_t population = 10000;  ///< synthetic validation set size
  bool reorder = true;             ///< channel reordering (§V-D); off = ablation
  bool dynamic_exits = true;       ///< false = single exit at the last stage
  /// Count the gated-idle energy of CUs during the inference window
  /// (board-level accounting, matching the calibration anchors).
  bool count_idle_power = true;
  perf::model_options model;       ///< analytic model knobs
  /// Non-null switches sublayer costs to the trained surrogate (§V-E).
  const surrogate::hw_predictor* predictor = nullptr;
  constraints limits;
  /// When set, mappings whose sustained power would trip the package
  /// throttle are rejected (extension; see soc::thermal_model).
  std::optional<soc::thermal_model> thermal;
  /// Co-location scenario: co-resident traffic derates the platform, DVFS
  /// caps clamp per-CU levels, reserved CUs and over-budget/over-thermal
  /// mappings are rejected. The default (idle) context changes nothing —
  /// evaluation stays bit-identical to the contention-free path.
  soc::contention_context contention;
};

/// Everything measured about one candidate.
struct evaluation {
  configuration config;

  bool feasible = true;
  std::string reject_reason;

  double objective = std::numeric_limits<double>::infinity();  ///< eq. 16

  double avg_latency_ms = 0.0;   ///< exit-weighted (Table II "Avg. Lat.")
  double avg_energy_mj = 0.0;    ///< exit-weighted (Table II "Avg. Enrg.")
  double worst_latency_ms = 0.0; ///< all stages instantiated (eq. 13)
  double worst_energy_mj = 0.0;  ///< all stages instantiated (eq. 14)

  double accuracy_pct = 0.0;            ///< dynamic top-1 (Table II "TOP-1 Acc")
  double last_stage_accuracy_pct = 0.0; ///< Acc_SM of eq. 16

  double fmap_reuse_pct = 0.0;     ///< Table II "Fmap. reuse. (%)"
  double stored_fmap_bytes = 0.0;  ///< size_Pi(F, I)
  double fmap_traffic_bytes = 0.0; ///< total inter-CU fmap movement

  std::vector<double> stage_latency_ms;   ///< T_Si
  std::vector<double> stage_energy_mj;    ///< E_Si
  std::vector<double> stage_accuracy_pct; ///< A_i
  std::vector<double> exit_fractions;     ///< per-stage exit shares
};

/// Reusable, thread-safe (const) evaluator bound to one network + platform.
class evaluator {
 public:
  evaluator(const nn::network& net, const soc::platform& plat, evaluator_options opt = {},
            std::uint64_t ranking_seed = 0xC0FFEE);

  /// Runs the full pipeline on one configuration.
  [[nodiscard]] evaluation evaluate(const configuration& config) const;

  /// Runs the full pipeline on a whole batch through the SoA fast path
  /// (perf::batch_characterizer): all configurations are transformed, then
  /// one arena-backed characterizer pass computes every plan's execution
  /// result and profile before the per-candidate accuracy/objective/
  /// constraint logic runs. Results are bit-identical to calling
  /// `evaluate` element-wise (differential-tested); surrogate-backed
  /// evaluators (`predictor != nullptr`) fall back to exactly that
  /// element-wise loop, as the GBT path has no batched form.
  ///
  /// Throws whatever the first failing element's `evaluate` would throw;
  /// on any throw no results are returned (all-or-nothing).
  [[nodiscard]] std::vector<evaluation> evaluate_batch(
      std::span<const configuration* const> configs) const;

  [[nodiscard]] const nn::network& net() const noexcept { return *net_; }
  [[nodiscard]] const soc::platform& plat() const noexcept { return *plat_; }
  [[nodiscard]] const std::vector<nn::partition_group>& groups() const noexcept {
    return groups_;
  }
  [[nodiscard]] const nn::ranked_network& ranking() const noexcept { return ranking_; }
  [[nodiscard]] const evaluator_options& options() const noexcept { return opt_; }

 private:
  /// Everything downstream of the hardware simulation: per-stage copies,
  /// accuracy + exits, objective, constraint filter. Shared verbatim by the
  /// scalar and batched paths so they cannot diverge.
  [[nodiscard]] evaluation finish(const configuration& config, const dynamic_network& dyn,
                                  const perf::execution_result& exec,
                                  const perf::dynamic_profile& profile) const;

  /// Platform the hardware simulation runs against: the contention-derated
  /// copy when residents exist, the pristine platform otherwise.
  [[nodiscard]] const soc::platform& sim_plat() const noexcept {
    return contended_plat_ ? *contended_plat_ : *plat_;
  }
  /// Contention context for characterize_system, or null on the idle path.
  [[nodiscard]] const soc::contention_context* scenario_ctx() const noexcept {
    return opt_.contention.residents.empty() ? nullptr : &opt_.contention;
  }
  /// Clamps per-CU DVFS levels to the scenario caps (no-op when uncapped).
  void apply_dvfs_caps(perf::stage_plan& plan) const;

  const nn::network* net_;
  const soc::platform* plat_;
  evaluator_options opt_;
  /// apply_contention(*plat_, opt_.contention) when residents exist.
  std::optional<soc::platform> contended_plat_;
  std::vector<nn::partition_group> groups_;
  nn::ranked_network ranking_;
  data::accuracy_params acc_params_;
};

}  // namespace mapcq::core
