#include "core/baselines.h"

#include <algorithm>

#include "nn/partition_groups.h"
#include "perf/energy_model.h"

namespace mapcq::core {

baseline_result single_cu_baseline(const nn::network& net, const soc::platform& plat,
                                   std::size_t unit_index, const perf::model_options& opt) {
  const soc::compute_unit& cu = plat.unit(unit_index);
  const perf::single_cu_result run = perf::single_cu_run(net, cu, cu.dvfs.max_level(), opt);
  // Board-level view: the other CUs idle at their gated floor meanwhile.
  double idle_w = 0.0;
  for (std::size_t u = 0; u < plat.size(); ++u)
    if (u != unit_index) idle_w += plat.unit(u).idle_power_w();
  baseline_result out;
  out.name = cu.name + "-only";
  out.latency_ms = run.latency_ms;
  out.energy_mj = run.energy_mj + idle_w * run.latency_ms;
  out.accuracy_pct = net.base_accuracy;  // unmodified pretrained model
  out.fmap_reuse_pct = 0.0;
  return out;
}

configuration make_static_configuration(const nn::network& net, const soc::platform& plat) {
  const auto groups = nn::make_partition_groups(net);
  const std::size_t m = plat.size();

  configuration c;
  c.partition.assign(groups.size(), std::vector<double>(m, 1.0 / static_cast<double>(m)));
  c.forward.assign(groups.size(), std::vector<bool>(m, true));
  for (auto& row : c.forward) row[m - 1] = false;  // last stage feeds no one
  c.mapping.resize(m);
  for (std::size_t i = 0; i < m; ++i) c.mapping[i] = i;
  c.dvfs.resize(m);
  for (std::size_t u = 0; u < m; ++u) c.dvfs[u] = plat.unit(u).dvfs.max_level();
  return c;
}

evaluation static_mapping_baseline(const nn::network& net, const soc::platform& plat,
                                   const perf::model_options& opt) {
  evaluator_options eopt;
  eopt.dynamic_exits = false;  // single exit at the tail
  eopt.model = opt;
  const evaluator eval{net, plat, eopt};
  return eval.evaluate(make_static_configuration(net, plat));
}

evaluation static_mapping_baseline(evaluation_engine& engine) {
  const evaluator& eval = engine.base();
  return engine.evaluate(make_static_configuration(eval.net(), eval.plat()));
}

pipeline_result pipeline_baseline(const nn::network& net, const soc::platform& plat,
                                  const perf::model_options& opt) {
  net.validate();
  const std::size_t m = plat.size();
  const double total_flops = net.total_flops();

  // Greedy balanced cut: start a new segment whenever the running FLOP
  // share crosses the next 1/m boundary.
  pipeline_result out;
  out.name = "pipeline (depth-split)";
  out.accuracy_pct = net.base_accuracy;  // model is unmodified
  out.cut_points.push_back(0);
  double acc_flops = 0.0;
  for (std::size_t j = 0; j + 1 < net.layers.size() && out.cut_points.size() < m; ++j) {
    acc_flops += net.layers[j].flops();
    const double boundary =
        static_cast<double>(out.cut_points.size()) / static_cast<double>(m) * total_flops;
    if (acc_flops >= boundary) out.cut_points.push_back(j + 1);
  }

  // Cost each segment on its CU; single-input latency chains segments with
  // an inter-CU handoff of the boundary feature map.
  std::vector<double> segment_ms(out.cut_points.size(), 0.0);
  for (std::size_t seg = 0; seg < out.cut_points.size(); ++seg) {
    const std::size_t first = out.cut_points[seg];
    const std::size_t last =
        seg + 1 < out.cut_points.size() ? out.cut_points[seg + 1] : net.layers.size();
    const soc::compute_unit& cu = plat.unit(seg);
    const std::size_t level = cu.dvfs.max_level();
    for (std::size_t j = first; j < last; ++j) {
      const nn::layer& l = net.layers[j];
      perf::sublayer_cost cost;
      cost.kind = l.kind;
      cost.flops = l.flops();
      cost.weight_bytes = l.weight_bytes();
      cost.in_bytes = l.input_bytes();
      cost.out_bytes = l.output_bytes();
      cost.width_frac = 1.0;
      segment_ms[seg] += perf::sublayer_latency_ms(cost, cu, level, 1, opt);
      out.energy_mj += perf::sublayer_energy_mj(cost, cu, level, 1, opt);
    }
    out.latency_ms += segment_ms[seg];
    if (seg + 1 < out.cut_points.size()) {
      const double bytes = net.layers[last - 1].output_bytes();
      out.latency_ms += plat.xfer.transfer_ms(bytes);
      out.energy_mj += plat.xfer.transfer_mj(bytes);
    }
  }

  const double bottleneck = *std::max_element(segment_ms.begin(), segment_ms.end());
  out.throughput_ips = bottleneck > 0.0 ? 1000.0 / bottleneck : 0.0;
  return out;
}

}  // namespace mapcq::core
