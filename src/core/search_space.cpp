#include "core/search_space.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mapcq::core {

search_space::search_space(const nn::network& net, const soc::platform& plat, int ratio_levels,
                           const std::vector<std::size_t>& banned_units)
    : plat_(&plat), allowed_mask_(plat.size(), true), ratio_levels_(ratio_levels) {
  if (ratio_levels < 2) throw std::invalid_argument("search_space: need >= 2 ratio levels");
  for (const std::size_t u : banned_units) {
    if (u >= plat.size()) throw std::invalid_argument("search_space: banned unit out of range");
    allowed_mask_[u] = false;
  }
  for (std::size_t u = 0; u < plat.size(); ++u)
    if (allowed_mask_[u]) allowed_units_.push_back(u);
  stages_ = allowed_units_.size();
  if (stages_ < 2) throw std::invalid_argument("search_space: need >= 2 usable compute units");
  for (const auto& g : nn::make_partition_groups(net)) group_widths_.push_back(g.width);
}

genome search_space::random(util::rng& gen) const {
  genome g;
  g.ratio_levels.assign(groups(), std::vector<int>(stages_, 0));
  g.forward.assign(groups(), std::vector<bool>(stages_, false));
  for (std::size_t grp = 0; grp < groups(); ++grp) {
    for (std::size_t s = 0; s < stages_; ++s) {
      const int lo = s == 0 ? 1 : 0;  // stage 1 must own a slice
      g.ratio_levels[grp][s] = static_cast<int>(gen.uniform_int(lo, ratio_levels_ - 1));
      if (s + 1 < stages_) g.forward[grp][s] = gen.bernoulli(0.5);
    }
  }
  g.mapping = allowed_units_;
  gen.shuffle(g.mapping);
  g.dvfs.resize(plat_->size());
  for (std::size_t u = 0; u < plat_->size(); ++u)
    g.dvfs[u] = static_cast<std::size_t>(
        gen.uniform_int(0, static_cast<std::int64_t>(plat_->unit(u).dvfs.levels()) - 1));
  return g;
}

genome search_space::static_seed() const {
  genome g;
  g.ratio_levels.assign(groups(), std::vector<int>(stages_, 1));
  g.forward.assign(groups(), std::vector<bool>(stages_, false));
  for (auto& row : g.forward)
    for (std::size_t s = 0; s + 1 < stages_; ++s) row[s] = true;
  g.mapping = allowed_units_;
  g.dvfs.resize(plat_->size());
  for (std::size_t u = 0; u < plat_->size(); ++u) g.dvfs[u] = plat_->unit(u).dvfs.max_level();
  return g;
}

configuration search_space::decode(const genome& g) const {
  if (!in_bounds(g)) throw std::invalid_argument("search_space::decode: genome out of bounds");
  configuration c;
  c.partition.assign(groups(), std::vector<double>(stages_, 0.0));
  c.forward.assign(groups(), std::vector<bool>(stages_, false));
  for (std::size_t grp = 0; grp < groups(); ++grp) {
    double sum = 0.0;
    for (std::size_t s = 0; s < stages_; ++s) sum += static_cast<double>(g.ratio_levels[grp][s]);
    for (std::size_t s = 0; s < stages_; ++s) {
      c.partition[grp][s] = static_cast<double>(g.ratio_levels[grp][s]) / sum;
      if (s + 1 < stages_) c.forward[grp][s] = g.forward[grp][s];
    }
  }
  c.mapping = g.mapping;
  c.dvfs = g.dvfs;
  return c;
}

bool search_space::in_bounds(const genome& g) const noexcept {
  if (g.ratio_levels.size() != groups() || g.forward.size() != groups()) return false;
  for (std::size_t grp = 0; grp < groups(); ++grp) {
    if (g.ratio_levels[grp].size() != stages_ || g.forward[grp].size() != stages_) return false;
    if (g.ratio_levels[grp][0] < 1) return false;
    for (const int lvl : g.ratio_levels[grp])
      if (lvl < 0 || lvl >= ratio_levels_) return false;
  }
  if (g.mapping.size() != stages_ || g.dvfs.size() != plat_->size()) return false;
  std::vector<bool> used(plat_->size(), false);
  for (const std::size_t cu : g.mapping) {
    if (cu >= plat_->size() || !allowed_mask_[cu] || used[cu]) return false;
    used[cu] = true;
  }
  for (std::size_t u = 0; u < g.dvfs.size(); ++u)
    if (g.dvfs[u] >= plat_->unit(u).dvfs.levels()) return false;
  return true;
}

double search_space::log10_per_group() const {
  return static_cast<double>(stages_) * std::log10(static_cast<double>(ratio_levels_)) +
         static_cast<double>(stages_ - 1) * std::log10(2.0);
}

double search_space::log10_total() const {
  double lg = static_cast<double>(groups()) * log10_per_group();
  // stage -> CU injections over the usable units: M == |allowed|, so M!.
  for (std::size_t i = 2; i <= stages_; ++i) lg += std::log10(static_cast<double>(i));
  lg += std::log10(plat_->dvfs_configurations());
  return lg;
}

double search_space::paper_per_layer_estimate(double dvfs_combos) const {
  double est = std::pow(static_cast<double>(ratio_levels_), static_cast<double>(stages_));
  for (std::size_t i = 2; i <= stages_; ++i) est *= static_cast<double>(i);
  return est * dvfs_combos;
}

}  // namespace mapcq::core
