#pragma once
// The full mapping configuration Pi = (P, I, M, theta) of paper §IV.
//
//  * P (partition):  partition[g][i] -- fraction of group g's width units
//                    assigned to stage i; per group the fractions sum to 1.
//  * I (indicator):  forward[g][i]   -- whether stage i's slice of group g's
//                    output features is forwarded to ("reused by") later
//                    stages. The last stage never forwards.
//  * M (mapping):    mapping[i]      -- CU index executing stage i; an
//                    injective assignment (eq. 7).
//  * theta (DVFS):   dvfs[u]         -- DVFS level of platform unit u.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "soc/platform.h"

namespace mapcq::core {

/// A candidate mapping of one network onto one platform.
struct configuration {
  std::vector<std::vector<double>> partition;  ///< [group][stage], rows sum to 1
  std::vector<std::vector<bool>> forward;      ///< [group][stage]
  std::vector<std::size_t> mapping;            ///< [stage] -> CU index
  std::vector<std::size_t> dvfs;               ///< [unit]  -> DVFS level

  [[nodiscard]] std::size_t groups() const noexcept { return partition.size(); }
  [[nodiscard]] std::size_t stages() const noexcept { return mapping.size(); }

  /// Canonical content hash over (P, I, M, theta); equal configurations hash
  /// equal. This is the memo key of `core::evaluation_engine`.
  [[nodiscard]] std::size_t hash() const noexcept;

  /// Exact structural equality over all four parameter blocks.
  [[nodiscard]] bool operator==(const configuration&) const = default;

  /// Fraction of settable indicator bits that are set: the paper's
  /// "Fmap reuse (%)" metric (Table II). Only stages 1..M-1 count (the last
  /// stage's features feed no one) and only stages holding a nonzero slice.
  [[nodiscard]] double fmap_reuse_ratio() const;

  /// Throws std::logic_error on structural problems (ragged rows, fractions
  /// not summing to 1, non-injective mapping, out-of-range indices).
  void validate(const soc::platform& plat) const;

  /// Compact human-readable summary (for logs and examples).
  [[nodiscard]] std::string describe(const soc::platform& plat) const;
};

}  // namespace mapcq::core

template <>
struct std::hash<mapcq::core::configuration> {
  std::size_t operator()(const mapcq::core::configuration& c) const noexcept { return c.hash(); }
};
