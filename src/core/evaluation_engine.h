#pragma once
// Memoizing, batched evaluation service — the shared evaluation back-end of
// the ROADMAP's caching/batching/async serving architecture.
//
// The GA re-visits many candidates: elites survive generations unchanged,
// crossover and mutation regenerate earlier children, and Pareto validation
// re-evaluates archived configurations. `evaluation_engine` wraps a
// `core::evaluator` with a sharded, mutex-striped memo table keyed by the
// canonical `configuration::hash()`, collapses identical configurations
// inside a batch onto one evaluator run, and fans the distinct misses out
// over a `util::thread_pool`. Cached results are bit-identical to direct
// evaluation: `evaluator::evaluate` is deterministic and const, so serving
// a stored `evaluation` is indistinguishable from recomputing it.
//
// Concurrency model (see docs/ARCHITECTURE.md for the full picture):
//   * every public member is safe to call from any thread;
//   * racing callers never evaluate the same configuration twice: a request
//     for a candidate that another thread is currently evaluating joins the
//     *in-flight slot* and waits for that run instead of starting its own
//     ("in-flight dedup", counted in `engine_stats::inflight`);
//   * `evaluate_batch_async` lets several batches overlap on one worker
//     pool — the island-model GA keeps the pool busy across generations by
//     having K islands' batches in flight at once.

#include <atomic>
#include <cstddef>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/configuration.h"
#include "core/evaluator.h"
#include "util/thread_pool.h"

namespace mapcq::core {

/// Which cached entry a full shard evicts first.
enum class eviction_policy {
  fifo,  ///< insertion order (cheapest bookkeeping; fine for one-shot runs)
  lru    ///< least-recently-used: a hit refreshes the entry, so hot keys
         ///< survive capacity pressure in long-lived serving sessions
};

/// Engine tuning knobs.
struct engine_options {
  std::size_t shards = 16;   ///< mutex stripes of the memo table
  std::size_t capacity = 0;  ///< max cached evaluations; 0 = unbounded
  std::size_t threads = 1;   ///< batch-evaluation workers (1 = inline)
  /// false turns the engine into a pass-through (every call runs the
  /// evaluator, and in-flight dedup is disabled too); kept for A/B benches
  /// and bit-identity tests.
  bool memoize = true;
  eviction_policy eviction = eviction_policy::fifo;
};

/// Monotonic counters. One batch element is exactly one of: a `hit` (served
/// from the table), a `dedup` (identical to an earlier element of the same
/// batch, collapsed onto its run), an `inflight` (identical to a candidate
/// another thread was already evaluating, served by waiting on that run) or
/// a `miss` (an actual evaluator run).
struct engine_stats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t dedup = 0;
  std::size_t inflight = 0;
  std::size_t evictions = 0;

  [[nodiscard]] std::size_t lookups() const noexcept {
    return hits + misses + dedup + inflight;
  }
  /// Fraction of lookups that avoided an evaluator run.
  [[nodiscard]] double hit_rate() const noexcept {
    const std::size_t n = lookups();
    return n == 0 ? 0.0 : static_cast<double>(hits + dedup + inflight) / static_cast<double>(n);
  }
};

[[nodiscard]] inline engine_stats operator-(engine_stats a, const engine_stats& b) noexcept {
  a.hits -= b.hits;
  a.misses -= b.misses;
  a.dedup -= b.dedup;
  a.inflight -= b.inflight;
  a.evictions -= b.evictions;
  return a;
}

/// Thread-safe memoizing front-end of one `evaluator`.
///
/// Ownership: the engine borrows the evaluator (which must outlive it) and
/// owns its memo table and worker pool. Engines are neither copyable nor
/// movable; long-lived callers (serving sessions) hold them by reference.
///
/// Thread-safety: every public member may be called concurrently from any
/// thread. Results are pure functions of the configuration, so racing
/// callers always observe bit-identical evaluations regardless of which
/// thread actually ran the evaluator.
class evaluation_engine {
 public:
  explicit evaluation_engine(const evaluator& eval, engine_options opt = {});

  evaluation_engine(const evaluation_engine&) = delete;
  evaluation_engine& operator=(const evaluation_engine&) = delete;

  /// One candidate, served from the cache when possible.
  ///
  /// Blocking: returns immediately on a cache hit; blocks for one evaluator
  /// run on a miss; blocks until the owning thread finishes when the same
  /// configuration is already in flight elsewhere (never runs it twice).
  [[nodiscard]] evaluation evaluate(const configuration& config);

  /// A whole population, synchronously: probes the cache, collapses
  /// in-batch duplicates, joins candidates already in flight on other
  /// threads, then evaluates the distinct misses across the worker pool.
  /// The result vector is index-aligned with `configs` regardless of thread
  /// count. Blocks the calling thread until every element is resolved.
  [[nodiscard]] std::vector<evaluation> evaluate_batch(std::span<const configuration> configs);

  /// A whole population, asynchronously. The cache probe, in-batch dedup
  /// and in-flight registration happen synchronously on the calling thread
  /// (so the engine's counters are already final for this batch when the
  /// call returns); the distinct misses are then enqueued on the worker
  /// pool and the call returns without waiting for them.
  ///
  /// The returned future assembles the index-aligned result vector lazily:
  /// call `get()` (or `wait()`) to block until every element — including
  /// candidates joined from other threads' in-flight runs — is resolved.
  /// Worker threads never block on other batches, so any number of async
  /// batches may safely overlap on one engine; this is what lets the
  /// island GA keep the pool busy while individual islands rank and breed.
  ///
  /// Dropping the future without calling `get()` is safe: the enqueued
  /// evaluations still run and populate the cache. An evaluator exception
  /// rethrows at `get()` (never inside a pool worker).
  ///
  /// With `threads <= 1` (no pool) the batch is evaluated inline before the
  /// call returns and the future is immediately ready.
  [[nodiscard]] std::future<std::vector<evaluation>> evaluate_batch_async(
      std::vector<configuration> configs);

  /// Snapshot of the counters (cheap; callers diff snapshots for deltas).
  [[nodiscard]] engine_stats stats() const noexcept;

  /// Number of evaluations currently cached.
  [[nodiscard]] std::size_t size() const;

  /// Drops every cached entry (counters are kept). In-flight evaluations
  /// are unaffected: they complete and re-insert their results.
  void clear();

  [[nodiscard]] const evaluator& base() const noexcept { return *eval_; }
  [[nodiscard]] const engine_options& options() const noexcept { return opt_; }

 private:
  // Hash collisions are resolved by exact configuration equality against
  // the `evaluation::config` stored in each entry. Entries live on the
  // eviction list (coldest at the front); the map indexes them by key. An
  // LRU hit splices its entry to the back, FIFO leaves the order alone.
  //
  // The in-flight table shares the shard mutex with the memo table, which
  // gives the dedup protocol its key invariant for free: an owner inserts
  // its result into the cache and retires its in-flight slot under one lock
  // acquisition, so a prober that sees neither (under the same lock) knows
  // the candidate has never been started and can safely claim ownership.
  using entry_list = std::list<std::pair<std::size_t, evaluation>>;
  struct inflight_slot {
    configuration config;
    std::shared_future<evaluation> result;
  };
  struct shard {
    mutable std::mutex mu;
    entry_list order;
    std::unordered_map<std::size_t, std::vector<entry_list::iterator>> map;
    std::unordered_map<std::size_t, std::vector<inflight_slot>> inflight;
  };

  /// Outcome of claiming one candidate under the shard lock.
  struct claim {
    enum class kind { hit, join, owner } outcome;
    evaluation value;  ///< filled for `hit`
    /// Pending result: a foreign run for `join`, our own promise's future
    /// for `owner` (so batch assembly reads values and exceptions alike).
    std::shared_future<evaluation> pending;
    std::promise<evaluation> promise;  ///< owned by `owner`
  };

  /// One batch, planned: every element classified as hit / in-batch dup /
  /// cross-thread join / owned miss, with all counters already bumped.
  struct batch_plan {
    struct group {
      std::size_t rep = 0;  ///< index of the group's representative element
      std::size_t key = 0;
      std::vector<std::size_t> dups;           ///< later in-batch duplicates
      bool owner = false;                      ///< we run the evaluator
      std::shared_future<evaluation> pending;  ///< the rep's eventual result
      std::promise<evaluation> promise;        ///< when owner
    };
    /// Async batches own their configurations here; synchronous batches
    /// leave it empty and `configs` views the caller's span (no copy).
    std::vector<configuration> storage;
    std::span<const configuration> configs;
    std::vector<evaluation> out;      ///< hits pre-filled
    std::vector<group> groups;        ///< joins and owned misses
    std::vector<std::size_t> owners;  ///< indices into `groups`
  };

  [[nodiscard]] shard& shard_for(std::size_t key) noexcept {
    return shards_[key % shards_.size()];
  }
  bool lookup(std::size_t key, const configuration& config, evaluation& out);
  void insert(std::size_t key, const evaluation& result);
  /// Cache-or-inflight-or-register, atomically per shard (counters bumped).
  [[nodiscard]] claim claim_slot(std::size_t key, const configuration& config);
  /// Removes a claimed in-flight slot (shared by completion and abandon).
  void retire_slot(std::size_t key, const configuration& config);
  /// Owner completion: publishes to the cache, retires the in-flight slot
  /// and fulfills the promise.
  void complete_owner(std::size_t key, const configuration& config,
                      std::promise<evaluation>& promise, const evaluation& result);
  /// Owner failure: retires the slot and propagates the exception to joiners.
  void abandon_owner(std::size_t key, const configuration& config,
                     std::promise<evaluation>& promise);
  /// Classifies `plan.configs` (which must already be set) in place.
  void plan_batch(batch_plan& plan);
  /// Evaluates one owned group. Never throws: an evaluator exception is
  /// parked in the group's promise (via abandon_owner) so pool workers
  /// never unwind; `finish_plan` rethrows it on the consuming thread.
  void run_owner(batch_plan& plan, std::size_t group_index);
  /// Collects every group's result (own runs and foreign joins alike) and
  /// copies duplicates into place; rethrows the first failed run.
  void finish_plan(batch_plan& plan);

  const evaluator* eval_;
  engine_options opt_;
  std::size_t shard_capacity_;  ///< per-shard entry cap (0 = unbounded)
  std::vector<shard> shards_;
  std::unique_ptr<util::thread_pool> pool_;  ///< null when threads <= 1

  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> dedup_{0};
  std::atomic<std::size_t> inflight_{0};
  std::atomic<std::size_t> evictions_{0};
};

}  // namespace mapcq::core
