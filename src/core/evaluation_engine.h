#pragma once
// Memoizing, batched evaluation service — the first step toward the
// ROADMAP's caching/batching/async serving architecture.
//
// The GA re-visits many candidates: elites survive generations unchanged,
// crossover and mutation regenerate earlier children, and Pareto validation
// re-evaluates archived configurations. `evaluation_engine` wraps a
// `core::evaluator` with a sharded, mutex-striped memo table keyed by the
// canonical `configuration::hash()`, collapses identical configurations
// inside a batch onto one evaluator run, and fans the distinct misses out
// over a `util::thread_pool`. Cached results are bit-identical to direct
// evaluation: `evaluator::evaluate` is deterministic and const, so serving
// a stored `evaluation` is indistinguishable from recomputing it.

#include <atomic>
#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/configuration.h"
#include "core/evaluator.h"
#include "util/thread_pool.h"

namespace mapcq::core {

/// Which cached entry a full shard evicts first.
enum class eviction_policy {
  fifo,  ///< insertion order (cheapest bookkeeping; fine for one-shot runs)
  lru    ///< least-recently-used: a hit refreshes the entry, so hot keys
         ///< survive capacity pressure in long-lived serving sessions
};

/// Engine tuning knobs.
struct engine_options {
  std::size_t shards = 16;   ///< mutex stripes of the memo table
  std::size_t capacity = 0;  ///< max cached evaluations; 0 = unbounded
  std::size_t threads = 1;   ///< batch-evaluation workers (1 = inline)
  /// false turns the engine into a pass-through (every call runs the
  /// evaluator); kept for A/B benches and bit-identity tests.
  bool memoize = true;
  eviction_policy eviction = eviction_policy::fifo;
};

/// Monotonic counters. One batch element is exactly one of: a `hit` (served
/// from the table), a `dedup` (identical to an earlier element of the same
/// batch, collapsed onto its run) or a `miss` (an actual evaluator run).
struct engine_stats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t dedup = 0;
  std::size_t evictions = 0;

  [[nodiscard]] std::size_t lookups() const noexcept { return hits + misses + dedup; }
  /// Fraction of lookups that avoided an evaluator run.
  [[nodiscard]] double hit_rate() const noexcept {
    const std::size_t n = lookups();
    return n == 0 ? 0.0 : static_cast<double>(hits + dedup) / static_cast<double>(n);
  }
};

[[nodiscard]] inline engine_stats operator-(engine_stats a, const engine_stats& b) noexcept {
  a.hits -= b.hits;
  a.misses -= b.misses;
  a.dedup -= b.dedup;
  a.evictions -= b.evictions;
  return a;
}

/// Thread-safe memoizing front-end of one `evaluator`. The wrapped
/// evaluator must outlive the engine.
class evaluation_engine {
 public:
  explicit evaluation_engine(const evaluator& eval, engine_options opt = {});

  evaluation_engine(const evaluation_engine&) = delete;
  evaluation_engine& operator=(const evaluation_engine&) = delete;

  /// One candidate, served from the cache when possible.
  [[nodiscard]] evaluation evaluate(const configuration& config);

  /// A whole population: probes the cache, collapses in-batch duplicates,
  /// then evaluates the distinct misses across the worker pool. The result
  /// vector is index-aligned with `configs` regardless of thread count.
  [[nodiscard]] std::vector<evaluation> evaluate_batch(std::span<const configuration> configs);

  /// Snapshot of the counters (cheap; callers diff snapshots for deltas).
  [[nodiscard]] engine_stats stats() const noexcept;

  /// Number of evaluations currently cached.
  [[nodiscard]] std::size_t size() const;

  /// Drops every cached entry (counters are kept).
  void clear();

  [[nodiscard]] const evaluator& base() const noexcept { return *eval_; }
  [[nodiscard]] const engine_options& options() const noexcept { return opt_; }

 private:
  // Hash collisions are resolved by exact configuration equality against
  // the `evaluation::config` stored in each entry. Entries live on the
  // eviction list (coldest at the front); the map indexes them by key. An
  // LRU hit splices its entry to the back, FIFO leaves the order alone.
  using entry_list = std::list<std::pair<std::size_t, evaluation>>;
  struct shard {
    mutable std::mutex mu;
    entry_list order;
    std::unordered_map<std::size_t, std::vector<entry_list::iterator>> map;
  };

  [[nodiscard]] shard& shard_for(std::size_t key) noexcept {
    return shards_[key % shards_.size()];
  }
  bool lookup(std::size_t key, const configuration& config, evaluation& out);
  void insert(std::size_t key, const evaluation& result);

  const evaluator* eval_;
  engine_options opt_;
  std::size_t shard_capacity_;  ///< per-shard entry cap (0 = unbounded)
  std::vector<shard> shards_;
  std::unique_ptr<util::thread_pool> pool_;  ///< null when threads <= 1

  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> dedup_{0};
  std::atomic<std::size_t> evictions_{0};
};

}  // namespace mapcq::core
