#pragma once
// Memoizing, batched evaluation service — the shared evaluation back-end of
// the ROADMAP's caching/batching/async serving architecture.
//
// The GA re-visits many candidates: elites survive generations unchanged,
// crossover and mutation regenerate earlier children, and Pareto validation
// re-evaluates archived configurations. `evaluation_engine` wraps a
// `core::evaluator` with a sharded, mutex-striped memo table keyed by the
// canonical `configuration::hash()`, collapses identical configurations
// inside a batch onto one evaluator run, and fans the distinct misses out
// over a `util::thread_pool`. Cached results are bit-identical to direct
// evaluation: `evaluator::evaluate` is deterministic and const, so serving
// a stored `evaluation` is indistinguishable from recomputing it.
//
// Concurrency model (see docs/ARCHITECTURE.md for the full picture):
//   * every public member is safe to call from any thread;
//   * racing callers never evaluate the same configuration twice: a request
//     for a candidate that another thread is currently evaluating joins the
//     *in-flight slot* and waits for that run instead of starting its own
//     ("in-flight dedup", counted in `engine_stats::inflight`);
//   * `evaluate_batch_async` lets several batches overlap on one worker
//     pool — the island-model GA keeps the pool busy across generations by
//     having K islands' batches in flight at once.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/configuration.h"
#include "core/evaluator.h"
#include "util/thread_pool.h"

namespace mapcq::core {

/// Which cached entry a full shard evicts first.
enum class eviction_policy {
  fifo,  ///< insertion order (cheapest bookkeeping; fine for one-shot runs)
  lru    ///< least-recently-used: a hit refreshes the entry, so hot keys
         ///< survive capacity pressure in long-lived serving sessions
};

/// Engine tuning knobs.
struct engine_options {
  std::size_t shards = 16;   ///< mutex stripes of the memo table
  std::size_t capacity = 0;  ///< max cached evaluations; 0 = unbounded
  std::size_t threads = 1;   ///< batch-evaluation workers (1 = inline)
  /// false turns the engine into a pass-through (every call runs the
  /// evaluator, and in-flight dedup is disabled too); kept for A/B benches
  /// and bit-identity tests.
  bool memoize = true;
  /// Route owned misses through `evaluator::evaluate_batch` (the SoA
  /// batch characterizer) in per-worker chunks instead of one scalar
  /// evaluator call per configuration. Results are bit-identical either
  /// way (pinned by tests/test_batch_evaluator.cpp); false is the scalar
  /// ablation baseline for the A/B bench.
  bool soa_batch = true;
  /// Pin pool workers to CPUs round-robin (Linux; no-op elsewhere). See
  /// util::pool_options::pin_threads.
  bool pin_threads = false;
  eviction_policy eviction = eviction_policy::fifo;
};

/// Monotonic counters. One batch element is exactly one of: a `hit` (served
/// from the table), a `dedup` (identical to an earlier element of the same
/// batch, collapsed onto its run), an `inflight` (identical to a candidate
/// another thread was already evaluating, served by waiting on that run) or
/// a `miss` (an actual evaluator run).
struct engine_stats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t dedup = 0;
  std::size_t inflight = 0;
  std::size_t evictions = 0;
  /// Entries purged because their predictor epoch went stale (see
  /// `advance_epoch`); distinct from capacity `evictions`.
  std::size_t invalidated = 0;
  /// Gauge (not a counter): approximate bytes currently held by the memo
  /// table — sum of `approx_evaluation_bytes` over the live entries,
  /// maintained on insert/evict/purge. Spill and capacity decisions read
  /// this instead of flying blind on entry counts (records vary wildly
  /// with stage counts). Being a gauge it passes through `operator-`
  /// unchanged (a delta keeps the minuend's footprint; subtracting
  /// snapshots would underflow whenever the cache shrank).
  std::size_t cache_bytes = 0;

  [[nodiscard]] std::size_t lookups() const noexcept {
    return hits + misses + dedup + inflight;
  }
  /// Fraction of lookups that avoided an evaluator run.
  [[nodiscard]] double hit_rate() const noexcept {
    const std::size_t n = lookups();
    return n == 0 ? 0.0 : static_cast<double>(hits + dedup + inflight) / static_cast<double>(n);
  }
};

[[nodiscard]] inline engine_stats operator-(engine_stats a, const engine_stats& b) noexcept {
  a.hits -= b.hits;
  a.misses -= b.misses;
  a.dedup -= b.dedup;
  a.inflight -= b.inflight;
  a.evictions -= b.evictions;
  a.invalidated -= b.invalidated;
  // cache_bytes is a gauge: the delta reports the minuend's live footprint.
  return a;
}

/// Approximate memory footprint of one cached evaluation: the struct plus
/// its heap payloads (configuration matrices, per-stage vectors, reject
/// reason). An estimate, not an accounting — allocator overhead and
/// small-string storage are ignored — but proportional to the real cost,
/// which is what capacity/spill decisions need.
[[nodiscard]] std::size_t approx_evaluation_bytes(const evaluation& e) noexcept;

/// Thread-safe memoizing front-end of one `evaluator`.
///
/// Ownership: the engine borrows the evaluator (and every later one handed
/// to `advance_epoch`; each must stay alive until no batch planned against
/// it is in flight — in practice, for the engine's lifetime) and owns its
/// memo table and worker pool. Engines are neither copyable nor movable;
/// long-lived callers (serving sessions) hold them by reference.
///
/// Thread-safety: every public member may be called concurrently from any
/// thread. Results are pure functions of the configuration, so racing
/// callers always observe bit-identical evaluations regardless of which
/// thread actually ran the evaluator.
class evaluation_engine {
 public:
  explicit evaluation_engine(const evaluator& eval, engine_options opt = {});

  evaluation_engine(const evaluation_engine&) = delete;
  evaluation_engine& operator=(const evaluation_engine&) = delete;

  /// One candidate, served from the cache when possible.
  ///
  /// Blocking: returns immediately on a cache hit; blocks for one evaluator
  /// run on a miss; blocks until the owning thread finishes when the same
  /// configuration is already in flight elsewhere (never runs it twice).
  [[nodiscard]] evaluation evaluate(const configuration& config);

  /// A whole population, synchronously: probes the cache, collapses
  /// in-batch duplicates, joins candidates already in flight on other
  /// threads, then evaluates the distinct misses across the worker pool.
  /// The result vector is index-aligned with `configs` regardless of thread
  /// count. Blocks the calling thread until every element is resolved.
  [[nodiscard]] std::vector<evaluation> evaluate_batch(std::span<const configuration> configs);

  /// A whole population, asynchronously. The cache probe, in-batch dedup
  /// and in-flight registration happen synchronously on the calling thread
  /// (so the engine's counters are already final for this batch when the
  /// call returns); the distinct misses are then enqueued on the worker
  /// pool and the call returns without waiting for them.
  ///
  /// The returned future assembles the index-aligned result vector lazily:
  /// call `get()` (or `wait()`) to block until every element — including
  /// candidates joined from other threads' in-flight runs — is resolved.
  /// Worker threads never block on other batches, so any number of async
  /// batches may safely overlap on one engine; this is what lets the
  /// island GA keep the pool busy while individual islands rank and breed.
  ///
  /// Dropping the future without calling `get()` is safe: the enqueued
  /// evaluations still run and populate the cache. An evaluator exception
  /// rethrows at `get()` (never inside a pool worker).
  ///
  /// With `threads <= 1` (no pool) the batch is evaluated inline before the
  /// call returns and the future is immediately ready.
  [[nodiscard]] std::future<std::vector<evaluation>> evaluate_batch_async(
      std::vector<configuration> configs);

  /// Snapshot of the counters (cheap; callers diff snapshots for deltas).
  [[nodiscard]] engine_stats stats() const noexcept;

  /// Number of evaluations currently cached (stale-epoch stragglers, which
  /// can never be served, included until the next advance purges them).
  [[nodiscard]] std::size_t size() const;

  /// Drops every cached entry (counters are kept). In-flight evaluations
  /// are unaffected: they complete and re-insert their results.
  void clear();

  /// Observer of every actual evaluator run ("ground truth"): invoked with
  /// the configuration and its fresh evaluation after the run completes and
  /// publishes, outside any engine lock. Cache hits, in-batch dedups and
  /// in-flight joins do NOT fire it — exactly one call per evaluator
  /// execution. The refresh pipeline hangs off this to learn from
  /// cache-miss traffic.
  ///
  /// The tap must not throw (exceptions are swallowed — an observer must
  /// never fail a successful evaluation). Passing nullptr uninstalls it and
  /// BLOCKS until every in-flight invocation has returned, so the owner of
  /// the tap's captures may destroy them right after.
  using ground_truth_tap = std::function<void(const configuration&, const evaluation&)>;
  void set_ground_truth_tap(ground_truth_tap tap);

  /// Atomically swaps the evaluator this engine fronts and bumps the cache
  /// epoch: entries and in-flight slots of earlier epochs are purged (the
  /// stragglers that in-flight old-epoch batches re-insert afterwards stay
  /// tagged stale and are never served — counted in
  /// `engine_stats::invalidated` when the next advance sweeps them).
  ///
  /// Batches already planned keep the evaluator they captured at submit
  /// time, so in-flight work finishes on the old model while every new
  /// call sees `next`; this is the predictor-promotion primitive of the
  /// surrogate refresh pipeline. `next` must outlive every batch planned
  /// against it — for the old evaluator that means until all in-flight
  /// batches at swap time have completed (serving sessions retire old
  /// evaluators into a keep-alive list).
  void advance_epoch(const evaluator& next);

  /// Current epoch (0 until the first advance). Cached results are only
  /// served to callers of the same epoch.
  [[nodiscard]] std::uint64_t epoch() const;

  /// The evaluator behind the *current* epoch.
  [[nodiscard]] const evaluator& base() const noexcept { return *current()->eval; }
  [[nodiscard]] const engine_options& options() const noexcept { return opt_; }

  /// Copies out every *current-epoch* cache entry, in deterministic order
  /// (shard 0..N, coldest first within a shard — so a capacity-bounded
  /// import replays the eviction order faithfully). Stale-epoch stragglers
  /// and in-flight runs are excluded: the export is exactly what the
  /// engine could serve right now. This is the session-snapshot primitive
  /// (serving/session_snapshot.h).
  [[nodiscard]] std::vector<evaluation> export_cache() const;

  /// Inserts `entries` into the cache at the *current* epoch — the restore
  /// half of `export_cache`. Entries already present are kept (first copy
  /// wins, as with racing batches); capacity eviction applies as usual.
  /// No hit/miss counters are bumped: importing is not traffic.
  void import_cache(std::span<const evaluation> entries);

 private:
  // Hash collisions are resolved by exact configuration equality against
  // the `evaluation::config` stored in each entry. Entries live on the
  // eviction list (coldest at the front); the map indexes them by key. An
  // LRU hit splices its entry to the back, FIFO leaves the order alone.
  // Every entry and slot is tagged with the epoch that produced it; lookups
  // and joins only match their caller's epoch, so a promotion can never
  // serve a stale prediction.
  //
  // The in-flight table shares the shard mutex with the memo table, which
  // gives the dedup protocol its key invariant for free: an owner inserts
  // its result into the cache and retires its in-flight slot under one lock
  // acquisition, so a prober that sees neither (under the same lock) knows
  // the candidate has never been started and can safely claim ownership.
  struct cache_entry {
    std::size_t key = 0;
    std::uint64_t epoch = 0;
    std::size_t bytes = 0;  ///< approx_evaluation_bytes(value), frozen at insert
    evaluation value;
  };
  using entry_list = std::list<cache_entry>;
  struct inflight_slot {
    configuration config;
    std::uint64_t epoch = 0;
    std::shared_future<evaluation> result;
  };
  struct shard {
    mutable std::mutex mu;
    entry_list order;
    std::unordered_map<std::size_t, std::vector<entry_list::iterator>> map;
    std::unordered_map<std::size_t, std::vector<inflight_slot>> inflight;
  };

  /// Outcome of claiming one candidate under the shard lock.
  struct claim {
    enum class kind { hit, join, owner } outcome;
    evaluation value;  ///< filled for `hit`
    /// Pending result: a foreign run for `join`, our own promise's future
    /// for `owner` (so batch assembly reads values and exceptions alike).
    std::shared_future<evaluation> pending;
    std::promise<evaluation> promise;  ///< owned by `owner`
  };

  /// Immutable (evaluator, epoch) pair: batches capture one at submit so
  /// in-flight work keeps its model across an advance_epoch swap.
  struct epoch_state {
    const evaluator* eval = nullptr;
    std::uint64_t epoch = 0;
  };

  /// One batch, planned: every element classified as hit / in-batch dup /
  /// cross-thread join / owned miss, with all counters already bumped.
  struct batch_plan {
    struct group {
      std::size_t rep = 0;  ///< index of the group's representative element
      std::size_t key = 0;
      std::vector<std::size_t> dups;           ///< later in-batch duplicates
      bool owner = false;                      ///< we run the evaluator
      std::shared_future<evaluation> pending;  ///< the rep's eventual result
      std::promise<evaluation> promise;        ///< when owner
    };
    /// The (evaluator, epoch) this whole batch runs against.
    std::shared_ptr<const epoch_state> state;
    /// Async batches own their configurations here; synchronous batches
    /// leave it empty and `configs` views the caller's span (no copy).
    std::vector<configuration> storage;
    std::span<const configuration> configs;
    std::vector<evaluation> out;      ///< hits pre-filled
    std::vector<group> groups;        ///< joins and owned misses
    std::vector<std::size_t> owners;  ///< indices into `groups`
  };

  [[nodiscard]] shard& shard_for(std::size_t key) noexcept {
    return shards_[key % shards_.size()];
  }
  /// The live (evaluator, epoch) snapshot.
  [[nodiscard]] std::shared_ptr<const epoch_state> current() const;
  void insert(std::size_t key, const evaluation& result, std::uint64_t epoch);
  /// Cache-or-inflight-or-register, atomically per shard (counters bumped).
  /// Only entries/slots of `epoch` match.
  [[nodiscard]] claim claim_slot(std::size_t key, const configuration& config,
                                 std::uint64_t epoch);
  /// Removes a claimed in-flight slot (shared by completion and abandon).
  void retire_slot(std::size_t key, const configuration& config, std::uint64_t epoch);
  /// Owner completion: publishes to the cache, retires the in-flight slot
  /// and fulfills the promise.
  void complete_owner(std::size_t key, const configuration& config, std::uint64_t epoch,
                      std::promise<evaluation>& promise, const evaluation& result);
  /// Owner failure: retires the slot and propagates the exception to joiners.
  void abandon_owner(std::size_t key, const configuration& config, std::uint64_t epoch,
                     std::promise<evaluation>& promise);
  /// Invokes the ground-truth tap, if any (never throws; see the setter).
  void fire_tap(const configuration& config, const evaluation& result) noexcept;
  /// Classifies `plan.configs` (which must already be set) in place and
  /// stamps `plan.state`.
  void plan_batch(batch_plan& plan);
  /// Evaluates one owned group. Never throws: an evaluator exception is
  /// parked in the group's promise (via abandon_owner) so pool workers
  /// never unwind; `finish_plan` rethrows it on the consuming thread.
  void run_owner(batch_plan& plan, std::size_t group_index);
  /// Contiguous split of `plan.owners` for dispatch: one span per pool
  /// worker under `soa_batch` (big chunks amortize the SoA gather), one
  /// span per owner otherwise (classic work-stealing balance). Chunk
  /// membership only affects scheduling — every owned result is a pure
  /// function of its configuration. Spans view `plan.owners`.
  [[nodiscard]] std::vector<std::span<const std::size_t>> owner_chunks(
      const batch_plan& plan) const;
  /// Evaluates a chunk of owned groups — through the evaluator's SoA batch
  /// path when `soa_batch` is on and the chunk has more than one group.
  /// Never throws: a batched failure falls back to per-owner scalar runs so
  /// only the actually-failing candidates abandon their promises.
  void run_owner_chunk(batch_plan& plan, std::span<const std::size_t> group_indices);
  /// Collects every group's result (own runs and foreign joins alike) and
  /// copies duplicates into place; rethrows the first failed run.
  void finish_plan(batch_plan& plan);

  engine_options opt_;
  std::size_t shard_capacity_;  ///< per-shard entry cap (0 = unbounded)
  std::vector<shard> shards_;

  mutable std::mutex state_mu_;  ///< guards `state_`
  std::shared_ptr<const epoch_state> state_;
  /// Tap invocations hold this shared; set_ground_truth_tap takes it
  /// unique, so uninstalling waits out in-flight observer calls.
  mutable std::shared_mutex tap_mu_;
  ground_truth_tap tap_;

  /// Declared after every member its drained tasks touch (shards_, the
  /// epoch state, the tap): the pool's destructor runs queued evaluations
  /// to completion, and those publish to the cache and fire the tap.
  std::unique_ptr<util::thread_pool> pool_;  ///< null when threads <= 1

  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> dedup_{0};
  std::atomic<std::size_t> inflight_{0};
  std::atomic<std::size_t> evictions_{0};
  std::atomic<std::size_t> invalidated_{0};
  std::atomic<std::size_t> bytes_{0};  ///< live-entry footprint (stats().cache_bytes)
};

}  // namespace mapcq::core
