#pragma once
// The boosting loop, split out of gbt_regressor so it can be driven by more
// than the one-shot constructor path: the online refresh pipeline refits
// candidate ensembles from accumulated ground-truth traffic (see refresh.h)
// with exactly the machinery the initial per-session training used.

#include <span>
#include <vector>

#include "surrogate/dataset.h"
#include "surrogate/decision_tree.h"
#include "surrogate/gbt.h"

namespace mapcq::surrogate {

class hw_predictor;  // predictor.h; scored, never constructed, here

/// One trained ensemble, as raw parts: what the boosting loop produces and
/// gbt_regressor wraps. Plain value type; movable, no thread-affinity.
struct fitted_ensemble {
  std::vector<regression_tree> trees;
  double base = 0.0;        ///< initial prediction (mean target)
  double train_rmse = 0.0;  ///< final training RMSE in the original target space
};

/// Stateless gradient-boosting trainer over squared loss.
///
/// Ownership: borrows the training rows for the duration of `fit` only.
/// Thread-safety: `fit` is const and reentrant — concurrent fits (e.g. a
/// background candidate retrain racing a first-time session training) are
/// safe. Blocking: `fit` runs the whole boosting loop on the calling thread.
class gbt_trainer {
 public:
  explicit gbt_trainer(gbt_params params) : params_(params) {}

  /// Fits one ensemble to rows `x` (equal widths) and targets `y`. Throws
  /// std::invalid_argument on empty/mismatched input, zero trees, a
  /// subsample outside (0,1], or non-positive targets under log_target.
  [[nodiscard]] fitted_ensemble fit(std::span<const std::vector<double>> x,
                                    std::span<const double> y) const;

  [[nodiscard]] const gbt_params& params() const noexcept { return params_; }

 private:
  gbt_params params_;
};

/// Held-out *ranking* fidelity of a predictor — the promotion currency of
/// the refresh pipeline. The GA consumes the surrogate through selection
/// and Pareto ranking, so rank correlation (Kendall tau) is what decides
/// whether a candidate model actually steers the search better; MAE is the
/// absolute-error tiebreak reported alongside.
struct rank_fidelity {
  double latency_tau = 0.0;
  double energy_tau = 0.0;
  double latency_mae = 0.0;
  double energy_mae = 0.0;

  /// Scalar promotion score: mean of the two taus.
  [[nodiscard]] double score() const noexcept { return 0.5 * (latency_tau + energy_tau); }
};

/// Scores a predictor's latency/energy heads on a held-out set (pure;
/// borrows both arguments for the call). Throws on an empty holdout.
[[nodiscard]] rank_fidelity score_predictor(const hw_predictor& predictor,
                                            const dataset& holdout);

/// The refresh promotion gate: a candidate replaces the incumbent only when
/// its held-out score beats the incumbent's by more than `margin` (strict,
/// so margin 0 still demands genuine improvement). Pure.
[[nodiscard]] inline bool should_promote(const rank_fidelity& candidate,
                                         const rank_fidelity& incumbent,
                                         double margin) noexcept {
  return candidate.score() > incumbent.score() + margin;
}

}  // namespace mapcq::surrogate
