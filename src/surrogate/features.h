#pragma once
// Featurization of (sublayer, CU, DVFS, concurrency) tuples for the
// hardware-cost surrogate (paper §V-E: "a predictor is first trained on a
// benchmarked dataset of diverse layer specifications, deployment hardware
// and DVFS settings").

#include <array>
#include <string>
#include <vector>

#include "perf/work.h"
#include "soc/compute_unit.h"

namespace mapcq::surrogate {

/// Number of features produced per example.
inline constexpr std::size_t feature_count = 18;

/// Feature vector layout (kept stable for model reuse):
///   0  log1p(flops)
///   1  log1p(weight_bytes)
///   2  log1p(in_bytes)
///   3  log1p(out_bytes)
///   4  width_frac
///   5  arithmetic intensity (flops / bytes)
///   6  op class (0 spatial, 1 matmul)
///   7..9   one-hot CU kind (gpu, dla, cpu)
///   10 peak_gflops (log)
///   11 mem_bandwidth_gbps
///   12 launch_overhead_ms
///   13 dvfs theta
///   14 frequency MHz / 1000
///   15 concurrency (active stages)
///   16 static power (W)
///   17 dynamic power (W)
[[nodiscard]] std::array<double, feature_count> featurize(const perf::sublayer_cost& cost,
                                                          const soc::compute_unit& cu,
                                                          std::size_t level,
                                                          std::size_t concurrency);

/// Human-readable feature names (index-aligned with featurize()). Returns
/// a reference to a function-local static: valid forever, thread-safe to
/// call (C++ magic-static initialization), never modified after first use.
[[nodiscard]] const std::vector<std::string>& feature_names();

}  // namespace mapcq::surrogate
