#include "surrogate/decision_tree.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace mapcq::surrogate {

namespace {

struct best_split {
  double gain = 0.0;
  std::size_t feature = 0;
  double threshold = 0.0;
};

double leaf_weight(double grad_sum, std::size_t n, double lambda) {
  return grad_sum / (static_cast<double>(n) + lambda);
}

double node_score(double grad_sum, std::size_t n, double lambda) {
  return grad_sum * grad_sum / (static_cast<double>(n) + lambda);
}

}  // namespace

regression_tree::regression_tree(std::span<const std::vector<double>> x,
                                 std::span<const double> y,
                                 std::span<const std::size_t> row_index,
                                 const tree_params& params) {
  if (x.size() != y.size()) throw std::invalid_argument("regression_tree: size mismatch");
  if (x.empty()) throw std::invalid_argument("regression_tree: empty data");
  if (row_index.empty()) throw std::invalid_argument("regression_tree: empty subsample");
  std::vector<std::size_t> rows(row_index.begin(), row_index.end());
  nodes_.reserve(64);
  grow(x, y, rows, 0, params);
}

regression_tree::regression_tree(std::vector<node> nodes, int depth)
    : nodes_(std::move(nodes)), depth_(depth) {
  if (nodes_.empty()) throw std::invalid_argument("regression_tree: empty node array");
  for (const node& n : nodes_) {
    if (n.leaf) continue;
    if (n.left >= nodes_.size() || n.right >= nodes_.size())
      throw std::invalid_argument("regression_tree: child index out of range");
  }
}

std::size_t regression_tree::grow(std::span<const std::vector<double>> x,
                                  std::span<const double> y, std::vector<std::size_t>& rows,
                                  int depth, const tree_params& params) {
  depth_ = std::max(depth_, depth);

  double grad_sum = 0.0;
  for (const std::size_t r : rows) grad_sum += y[r];

  const std::size_t me = nodes_.size();
  nodes_.push_back({});
  nodes_[me].value = leaf_weight(grad_sum, rows.size(), params.lambda);

  if (depth >= params.max_depth || rows.size() < 2 * params.min_samples_leaf) return me;

  const std::size_t n_features = x.front().size();
  const double parent_score = node_score(grad_sum, rows.size(), params.lambda);

  best_split best;
  // Exact greedy: for each feature, sort the node's rows by value and scan.
  std::vector<std::size_t> sorted = rows;
  for (std::size_t f = 0; f < n_features; ++f) {
    std::sort(sorted.begin(), sorted.end(),
              [&](std::size_t a, std::size_t b) { return x[a][f] < x[b][f]; });
    double left_sum = 0.0;
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      left_sum += y[sorted[i]];
      const double v = x[sorted[i]][f];
      const double v_next = x[sorted[i + 1]][f];
      if (v == v_next) continue;  // can't split between equal values
      const std::size_t n_left = i + 1;
      const std::size_t n_right = sorted.size() - n_left;
      if (n_left < params.min_samples_leaf || n_right < params.min_samples_leaf) continue;
      const double gain = node_score(left_sum, n_left, params.lambda) +
                          node_score(grad_sum - left_sum, n_right, params.lambda) - parent_score;
      if (gain > best.gain) {
        best.gain = gain;
        best.feature = f;
        best.threshold = 0.5 * (v + v_next);
      }
    }
  }

  if (best.gain <= params.min_gain) return me;

  std::vector<std::size_t> left_rows;
  std::vector<std::size_t> right_rows;
  left_rows.reserve(rows.size());
  right_rows.reserve(rows.size());
  for (const std::size_t r : rows)
    (x[r][best.feature] <= best.threshold ? left_rows : right_rows).push_back(r);
  if (left_rows.empty() || right_rows.empty()) return me;  // numeric edge case

  rows.clear();
  rows.shrink_to_fit();  // free before recursing

  nodes_[me].leaf = false;
  nodes_[me].feature = best.feature;
  nodes_[me].threshold = best.threshold;
  nodes_[me].gain = best.gain;
  const std::size_t left_id = grow(x, y, left_rows, depth + 1, params);
  nodes_[me].left = left_id;
  const std::size_t right_id = grow(x, y, right_rows, depth + 1, params);
  nodes_[me].right = right_id;
  return me;
}

double regression_tree::predict(std::span<const double> row) const {
  std::size_t cur = 0;
  while (!nodes_[cur].leaf) {
    if (nodes_[cur].feature >= row.size())
      throw std::invalid_argument("regression_tree::predict: row too narrow");
    cur = row[nodes_[cur].feature] <= nodes_[cur].threshold ? nodes_[cur].left
                                                            : nodes_[cur].right;
  }
  return nodes_[cur].value;
}

void regression_tree::add_feature_gain(std::vector<double>& importance) const {
  for (const auto& n : nodes_) {
    if (n.leaf) continue;
    if (n.feature < importance.size()) importance[n.feature] += n.gain;
  }
}

}  // namespace mapcq::surrogate
