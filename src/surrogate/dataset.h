#pragma once
// Benchmark dataset of layer-wise hardware measurements. The paper builds
// this with TensorRT on the Xavier; here the calibrated analytic model plays
// the measurement rig, with multiplicative Gaussian noise standing in for
// run-to-run measurement jitter (DESIGN.md §2).

#include <cstdint>
#include <vector>

#include "nn/graph.h"
#include "perf/latency_model.h"
#include "soc/platform.h"
#include "surrogate/features.h"

namespace mapcq::surrogate {

/// Supervised regression dataset (row-major features). Plain value type:
/// owns its rows, copyable, no thread-affinity — share freely once built.
struct dataset {
  std::vector<std::vector<double>> x;
  std::vector<double> latency_ms;  ///< measured tau
  std::vector<double> energy_mj;   ///< measured e

  [[nodiscard]] std::size_t size() const noexcept { return x.size(); }

  /// Appends one labeled row.
  void add_row(std::vector<double> row, double lat_ms, double en_mj);

  /// Appends every row of `other` (copied). The refresh pipeline uses this
  /// to fold logged ground-truth traffic into the original training set.
  void append(const dataset& other);
};

/// Deterministic train/test partition of a dataset.
struct dataset_split {
  dataset train;
  dataset test;
};

/// Shuffles with `seed` and splits at `train_fraction` in (0,1). Pure and
/// deterministic (same seed, same split); copies rows into the result.
[[nodiscard]] dataset_split split(const dataset& ds, double train_fraction, std::uint64_t seed);

/// Generation options.
struct benchmark_options {
  std::size_t samples = 5000;        ///< rows to generate
  double noise_stddev = 0.03;        ///< multiplicative measurement noise
  std::uint64_t seed = 2023;         ///< RNG seed
  perf::model_options model;         ///< underlying analytic model options
};

/// Samples random (layer slice, CU, DVFS, concurrency) combinations from the
/// networks' layers and labels them with the analytic models + noise.
/// Deterministic per (nets, plat, opt). Borrows the networks/platform for
/// the call only. Blocking: runs `opt.samples` analytic evaluations on the
/// calling thread — this is the expensive half of surrogate training, which
/// is why serving sessions do it once and reuse the predictor.
[[nodiscard]] dataset generate_benchmark(const std::vector<const nn::network*>& nets,
                                         const soc::platform& plat,
                                         const benchmark_options& opt = {});

}  // namespace mapcq::surrogate
