#include "surrogate/gbt.h"

#include <cmath>
#include <stdexcept>

#include "util/rng.h"
#include "util/stats.h"

namespace mapcq::surrogate {

gbt_regressor::gbt_regressor(std::span<const std::vector<double>> x, std::span<const double> y,
                             const gbt_params& params)
    : learning_rate_(params.learning_rate), log_target_(params.log_target) {
  if (x.size() != y.size() || x.empty())
    throw std::invalid_argument("gbt_regressor: bad training data");
  if (params.n_trees == 0) throw std::invalid_argument("gbt_regressor: n_trees must be > 0");
  if (params.subsample <= 0.0 || params.subsample > 1.0)
    throw std::invalid_argument("gbt_regressor: subsample out of (0,1]");

  const std::size_t n = x.size();
  std::vector<double> target(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (log_target_) {
      if (y[i] <= 0.0)
        throw std::invalid_argument("gbt_regressor: non-positive target with log_target");
      target[i] = std::log(y[i]);
    } else {
      target[i] = y[i];
    }
  }

  base_ = util::mean(target);
  std::vector<double> pred(n, base_);
  std::vector<double> residual(n);

  util::rng gen{params.seed};
  std::vector<std::size_t> all_rows(n);
  for (std::size_t i = 0; i < n; ++i) all_rows[i] = i;

  trees_.reserve(params.n_trees);
  for (std::size_t t = 0; t < params.n_trees; ++t) {
    for (std::size_t i = 0; i < n; ++i) residual[i] = target[i] - pred[i];

    std::vector<std::size_t> rows;
    if (params.subsample < 1.0) {
      rows.reserve(static_cast<std::size_t>(params.subsample * static_cast<double>(n)) + 1);
      for (std::size_t i = 0; i < n; ++i)
        if (gen.bernoulli(params.subsample)) rows.push_back(i);
      if (rows.size() < 2 * params.tree.min_samples_leaf) rows = all_rows;
    } else {
      rows = all_rows;
    }

    trees_.emplace_back(x, residual, rows, params.tree);
    for (std::size_t i = 0; i < n; ++i)
      pred[i] += learning_rate_ * trees_.back().predict(x[i]);
  }

  // Final training error in the original target space.
  std::vector<double> final_pred(n);
  std::vector<double> final_truth(n);
  for (std::size_t i = 0; i < n; ++i) {
    final_pred[i] = log_target_ ? std::exp(pred[i]) : pred[i];
    final_truth[i] = y[i];
  }
  train_rmse_ = util::rmse(final_pred, final_truth);
}

double gbt_regressor::predict(std::span<const double> row) const {
  double acc = base_;
  for (const auto& t : trees_) acc += learning_rate_ * t.predict(row);
  return log_target_ ? std::exp(acc) : acc;
}

std::vector<double> gbt_regressor::predict(std::span<const std::vector<double>> rows) const {
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& r : rows) out.push_back(predict(r));
  return out;
}

std::vector<double> gbt_regressor::feature_importance(std::size_t n_features) const {
  std::vector<double> imp(n_features, 0.0);
  for (const auto& t : trees_) t.add_feature_gain(imp);
  double total = 0.0;
  for (const double g : imp) total += g;
  if (total > 0.0)
    for (double& g : imp) g /= total;
  return imp;
}

}  // namespace mapcq::surrogate
