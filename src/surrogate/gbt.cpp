#include "surrogate/gbt.h"

#include <cmath>
#include <utility>

#include "surrogate/trainer.h"

namespace mapcq::surrogate {

gbt_regressor::gbt_regressor(std::span<const std::vector<double>> x, std::span<const double> y,
                             const gbt_params& params)
    : learning_rate_(params.learning_rate), log_target_(params.log_target) {
  // The loop itself lives in gbt_trainer (shared with the online refresh
  // pipeline's candidate refits); this class wraps the fitted parts.
  fitted_ensemble fitted = gbt_trainer{params}.fit(x, y);
  trees_ = std::move(fitted.trees);
  base_ = fitted.base;
  train_rmse_ = fitted.train_rmse;
}

gbt_regressor::gbt_regressor(fitted_ensemble parts, double learning_rate, bool log_target)
    : trees_(std::move(parts.trees)),
      base_(parts.base),
      learning_rate_(learning_rate),
      log_target_(log_target),
      train_rmse_(parts.train_rmse) {
  if (trees_.empty()) throw std::invalid_argument("gbt_regressor: empty restored ensemble");
}

double gbt_regressor::predict(std::span<const double> row) const {
  double acc = base_;
  for (const auto& t : trees_) acc += learning_rate_ * t.predict(row);
  return log_target_ ? std::exp(acc) : acc;
}

std::vector<double> gbt_regressor::predict(std::span<const std::vector<double>> rows) const {
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& r : rows) out.push_back(predict(r));
  return out;
}

std::vector<double> gbt_regressor::feature_importance(std::size_t n_features) const {
  std::vector<double> imp(n_features, 0.0);
  for (const auto& t : trees_) t.add_feature_gain(imp);
  double total = 0.0;
  for (const double g : imp) total += g;
  if (total > 0.0)
    for (double& g : imp) g /= total;
  return imp;
}

}  // namespace mapcq::surrogate
