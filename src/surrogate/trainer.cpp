#include "surrogate/trainer.h"

#include <cmath>
#include <stdexcept>

#include "surrogate/predictor.h"
#include "util/rng.h"
#include "util/stats.h"

namespace mapcq::surrogate {

fitted_ensemble gbt_trainer::fit(std::span<const std::vector<double>> x,
                                 std::span<const double> y) const {
  if (x.size() != y.size() || x.empty())
    throw std::invalid_argument("gbt_trainer: bad training data");
  if (params_.n_trees == 0) throw std::invalid_argument("gbt_trainer: n_trees must be > 0");
  if (params_.subsample <= 0.0 || params_.subsample > 1.0)
    throw std::invalid_argument("gbt_trainer: subsample out of (0,1]");

  const std::size_t n = x.size();
  std::vector<double> target(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (params_.log_target) {
      if (y[i] <= 0.0)
        throw std::invalid_argument("gbt_trainer: non-positive target with log_target");
      target[i] = std::log(y[i]);
    } else {
      target[i] = y[i];
    }
  }

  fitted_ensemble out;
  out.base = util::mean(target);
  std::vector<double> pred(n, out.base);
  std::vector<double> residual(n);

  util::rng gen{params_.seed};
  std::vector<std::size_t> all_rows(n);
  for (std::size_t i = 0; i < n; ++i) all_rows[i] = i;

  out.trees.reserve(params_.n_trees);
  for (std::size_t t = 0; t < params_.n_trees; ++t) {
    for (std::size_t i = 0; i < n; ++i) residual[i] = target[i] - pred[i];

    std::vector<std::size_t> rows;
    if (params_.subsample < 1.0) {
      rows.reserve(static_cast<std::size_t>(params_.subsample * static_cast<double>(n)) + 1);
      for (std::size_t i = 0; i < n; ++i)
        if (gen.bernoulli(params_.subsample)) rows.push_back(i);
      if (rows.size() < 2 * params_.tree.min_samples_leaf) rows = all_rows;
    } else {
      rows = all_rows;
    }

    out.trees.emplace_back(x, residual, rows, params_.tree);
    for (std::size_t i = 0; i < n; ++i)
      pred[i] += params_.learning_rate * out.trees.back().predict(x[i]);
  }

  // Final training error in the original target space.
  std::vector<double> final_pred(n);
  std::vector<double> final_truth(n);
  for (std::size_t i = 0; i < n; ++i) {
    final_pred[i] = params_.log_target ? std::exp(pred[i]) : pred[i];
    final_truth[i] = y[i];
  }
  out.train_rmse = util::rmse(final_pred, final_truth);
  return out;
}

rank_fidelity score_predictor(const hw_predictor& predictor, const dataset& holdout) {
  if (holdout.size() == 0) throw std::invalid_argument("score_predictor: empty holdout");
  const std::span<const std::vector<double>> rows{holdout.x};
  const std::vector<double> lat = predictor.latency_model().predict(rows);
  const std::vector<double> en = predictor.energy_model().predict(rows);
  rank_fidelity f;
  f.latency_tau = util::kendall_tau(lat, holdout.latency_ms);
  f.energy_tau = util::kendall_tau(en, holdout.energy_mj);
  f.latency_mae = util::mae(lat, holdout.latency_ms);
  f.energy_mae = util::mae(en, holdout.energy_mj);
  return f;
}

}  // namespace mapcq::surrogate
