#include "surrogate/dataset.h"

#include <stdexcept>
#include <utility>

#include "perf/energy_model.h"
#include "util/rng.h"

namespace mapcq::surrogate {

void dataset::add_row(std::vector<double> row, double lat_ms, double en_mj) {
  x.push_back(std::move(row));
  latency_ms.push_back(lat_ms);
  energy_mj.push_back(en_mj);
}

void dataset::append(const dataset& other) {
  x.insert(x.end(), other.x.begin(), other.x.end());
  latency_ms.insert(latency_ms.end(), other.latency_ms.begin(), other.latency_ms.end());
  energy_mj.insert(energy_mj.end(), other.energy_mj.begin(), other.energy_mj.end());
}

dataset_split split(const dataset& ds, double train_fraction, std::uint64_t seed) {
  if (train_fraction <= 0.0 || train_fraction >= 1.0)
    throw std::invalid_argument("split: fraction must be in (0,1)");
  std::vector<std::size_t> idx(ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) idx[i] = i;
  util::rng gen{seed};
  gen.shuffle(idx);

  const auto cut = static_cast<std::size_t>(train_fraction * static_cast<double>(ds.size()));
  dataset_split out;
  for (std::size_t r = 0; r < idx.size(); ++r) {
    dataset& dst = r < cut ? out.train : out.test;
    dst.x.push_back(ds.x[idx[r]]);
    dst.latency_ms.push_back(ds.latency_ms[idx[r]]);
    dst.energy_mj.push_back(ds.energy_mj[idx[r]]);
  }
  return out;
}

dataset generate_benchmark(const std::vector<const nn::network*>& nets,
                           const soc::platform& plat, const benchmark_options& opt) {
  if (nets.empty()) throw std::invalid_argument("generate_benchmark: no networks");
  for (const auto* n : nets)
    if (n == nullptr || n->layers.empty())
      throw std::invalid_argument("generate_benchmark: empty network");

  util::rng gen{opt.seed};
  dataset out;
  out.x.reserve(opt.samples);
  out.latency_ms.reserve(opt.samples);
  out.energy_mj.reserve(opt.samples);

  // Width fractions the partitioner can produce (eighths, paper §V-A).
  static constexpr double fracs[] = {0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0};

  for (std::size_t s = 0; s < opt.samples; ++s) {
    const nn::network& net = *nets[static_cast<std::size_t>(
        gen.uniform_int(0, static_cast<std::int64_t>(nets.size()) - 1))];
    const nn::layer& l = net.layers[static_cast<std::size_t>(
        gen.uniform_int(0, static_cast<std::int64_t>(net.layers.size()) - 1))];
    const std::size_t cu_idx =
        static_cast<std::size_t>(gen.uniform_int(0, static_cast<std::int64_t>(plat.size()) - 1));
    const soc::compute_unit& cu = plat.unit(cu_idx);
    const std::size_t level = static_cast<std::size_t>(
        gen.uniform_int(0, static_cast<std::int64_t>(cu.dvfs.levels()) - 1));
    const std::size_t concurrency = static_cast<std::size_t>(gen.uniform_int(1, 3));

    const double out_frac = fracs[gen.uniform_int(0, 7)];
    const double in_frac = fracs[gen.uniform_int(0, 7)];

    perf::sublayer_cost cost;
    cost.kind = l.kind;
    cost.flops = l.flops(in_frac, out_frac);
    cost.weight_bytes = l.weight_bytes(in_frac, out_frac);
    cost.in_bytes = l.input_bytes(in_frac);
    cost.out_bytes = l.output_bytes(out_frac);
    cost.width_frac = out_frac;

    const double tau = perf::sublayer_latency_ms(cost, cu, level, concurrency, opt.model);
    const double e = perf::sublayer_energy_mj(cost, cu, level, concurrency, opt.model);
    const double noise_t = 1.0 + gen.normal(0.0, opt.noise_stddev);
    const double noise_e = 1.0 + gen.normal(0.0, opt.noise_stddev);

    const auto feats = featurize(cost, cu, level, concurrency);
    out.x.emplace_back(feats.begin(), feats.end());
    out.latency_ms.push_back(tau * std::max(0.1, noise_t));
    out.energy_mj.push_back(e * std::max(0.1, noise_e));
  }
  return out;
}

}  // namespace mapcq::surrogate
