#include "surrogate/predictor.h"

#include <stdexcept>

#include "util/stats.h"

namespace mapcq::surrogate {

hw_predictor::hw_predictor(const dataset& train_set, const gbt_params& params) {
  if (train_set.size() == 0) throw std::invalid_argument("hw_predictor: empty training set");
  latency_ = std::make_unique<gbt_regressor>(std::span<const std::vector<double>>(train_set.x),
                                             std::span<const double>(train_set.latency_ms),
                                             params);
  energy_ = std::make_unique<gbt_regressor>(std::span<const std::vector<double>>(train_set.x),
                                            std::span<const double>(train_set.energy_mj), params);
}

hw_predictor::hw_predictor(gbt_regressor latency, gbt_regressor energy)
    : latency_(std::make_unique<gbt_regressor>(std::move(latency))),
      energy_(std::make_unique<gbt_regressor>(std::move(energy))) {}

double hw_predictor::latency_ms(const perf::sublayer_cost& cost, const soc::compute_unit& cu,
                                std::size_t level, std::size_t concurrency) const {
  if (cost.empty()) return 0.0;
  const auto f = featurize(cost, cu, level, concurrency);
  return latency_->predict(f);
}

double hw_predictor::energy_mj(const perf::sublayer_cost& cost, const soc::compute_unit& cu,
                               std::size_t level, std::size_t concurrency) const {
  if (cost.empty()) return 0.0;
  const auto f = featurize(cost, cu, level, concurrency);
  return energy_->predict(f);
}

hw_predictor::fidelity hw_predictor::evaluate(const dataset& test_set) const {
  if (test_set.size() == 0) throw std::invalid_argument("hw_predictor::evaluate: empty test set");
  const auto lat_pred = latency_->predict(std::span<const std::vector<double>>(test_set.x));
  const auto en_pred = energy_->predict(std::span<const std::vector<double>>(test_set.x));
  fidelity f;
  f.latency_rmse = util::rmse(lat_pred, test_set.latency_ms);
  f.latency_mape = util::mape(lat_pred, test_set.latency_ms);
  f.latency_r2 = util::r_squared(lat_pred, test_set.latency_ms);
  f.energy_rmse = util::rmse(en_pred, test_set.energy_mj);
  f.energy_mape = util::mape(en_pred, test_set.energy_mj);
  f.energy_r2 = util::r_squared(en_pred, test_set.energy_mj);
  return f;
}

}  // namespace mapcq::surrogate
