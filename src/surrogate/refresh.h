#pragma once
// Online surrogate-refresh pipeline (ROADMAP: "surrogate-refresh pipeline
// that retrains the GBT from cache-miss traffic").
//
// The paper trains the GBT once and searches against it, but a long-lived
// serving session sees a stream of analytic ground-truth results — cache
// misses, validation runs — that the original benchmark never covered. This
// pipeline accumulates those (features → measured cost) rows in a bounded
// reservoir log, periodically refits a candidate ensemble on
// original + logged samples with the same gbt_trainer machinery, scores
// candidate and incumbent on a held-out slice of the logged traffic (rows
// neither model trained on), and promotes the candidate only when its
// held-out rank fidelity (Kendall tau) beats the incumbent by a
// configurable margin. Promotion is delegated to the owner
// (a serving session) through a callback, which swaps the predictor under
// the surrogate engine via the engine's epoch scheme — in-flight batches
// finish on the old model, new batches see the new one, and epoch-tagged
// cache entries can never serve stale predictions.
//
// cf. ChamNet's predictor refinement and once-for-all-style accuracy
// predictor training (PAPERS.md): refining a cheap proxy from accumulated
// true evaluations is the standard accuracy-recovery move in HW-aware NAS.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

#include "surrogate/dataset.h"
#include "surrogate/trainer.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace mapcq::surrogate {

/// Refresh tuning knobs (service-wide; see serving::service_options).
struct refresh_options {
  /// Master switch. Off (the default) keeps PR 2–4 behavior bit-identical:
  /// no ground-truth tap, no background work, no predictor swaps.
  bool enabled = false;
  /// Maximum rows held in the training log. The log fills to capacity,
  /// then reservoir-samples (Algorithm R): every ground-truth row ever
  /// observed has equal probability of being retained, deterministic in
  /// (seed, arrival order).
  std::size_t log_capacity = 4096;
  /// New ground-truth rows that must arrive since the last retrain attempt
  /// before the next one triggers.
  std::size_t min_new_samples = 512;
  /// Minimum spacing between retrain attempts; 0 = count-gated only.
  std::chrono::milliseconds interval{0};
  /// Fraction of the *logged* rows held out to score candidate vs
  /// incumbent (rows neither model trained on, from the distribution the
  /// session actually serves); in (0, 1).
  double holdout_fraction = 0.25;
  /// A candidate is promoted only when its held-out score (mean Kendall
  /// tau) exceeds the incumbent's by MORE than this. 0 still requires
  /// strict improvement; negative margins are rejected at construction.
  double promotion_margin = 0.0;
  /// Seeds the reservoir and the per-attempt train/holdout shuffles.
  std::uint64_t seed = 0x5eedf00dULL;
  /// true = retrain inline inside the observe() call that triggered it
  /// (deterministic; tests and benches). false = retrain on the pipeline's
  /// own background worker so serving traffic never waits on a refit.
  bool synchronous = false;
};

/// Monotonic pipeline counters (one struct per session; snapshot with
/// refresh_pipeline::stats()).
struct refresh_stats {
  std::size_t observed = 0;   ///< ground-truth rows ever offered to the log
  std::size_t logged = 0;     ///< rows currently held in the reservoir
  std::size_t discarded = 0;  ///< rows the full reservoir sampled away
  std::size_t attempts = 0;   ///< candidate refits completed
  std::size_t promotions = 0; ///< candidates that beat the gate
  std::size_t rejections = 0; ///< candidates dropped by the gate
  /// Predictor generation: 0 = the initial per-session model, +1 per
  /// promotion (mirrors the surrogate engine's cache epoch).
  std::uint64_t epoch = 0;
  /// Held-out mean Kendall tau of the last completed attempt's candidate
  /// and incumbent (0 until the first attempt). Note the last attempt may
  /// be a rejection that ran after a promotion — use the promoted_* pair
  /// to reason about the model actually serving.
  double last_candidate_tau = 0.0;
  double last_incumbent_tau = 0.0;
  /// The same pair captured at the last *promotion* (0 until one happens):
  /// by the gate's construction, promoted_candidate_tau strictly exceeds
  /// promoted_incumbent_tau + promotion_margin.
  double promoted_candidate_tau = 0.0;
  double promoted_incumbent_tau = 0.0;
};

/// Bounded ground-truth log: appends until `capacity`, then keeps a
/// uniform reservoir sample (Algorithm R) of everything ever offered.
///
/// Ownership: owns its rows. Thread-safety: NONE — the refresh_pipeline
/// serializes access under its own mutex; standalone users must do the
/// same. Determinism: contents are a pure function of (capacity, seed,
/// arrival order).
class training_log {
 public:
  training_log(std::size_t capacity, std::uint64_t seed);

  /// Offers one labeled row; beyond capacity it replaces a random retained
  /// row with probability capacity/seen (classic reservoir step).
  void add(std::vector<double> x, double latency_ms, double energy_mj);

  [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t seen() const noexcept { return seen_; }
  /// Rows offered but not retained (0 until the reservoir overflows).
  [[nodiscard]] std::size_t discarded() const noexcept {
    return seen_ <= rows_.size() ? 0 : seen_ - rows_.size();
  }
  [[nodiscard]] const dataset& rows() const noexcept { return rows_; }

  /// Restores the reservoir from a snapshot: the retained rows plus the
  /// total ever offered (see refresh_pipeline::export_log). Throws
  /// std::invalid_argument when `rows` exceeds capacity or claims more
  /// retained rows than `seen`. The reservoir RNG is re-derived from
  /// (seed, seen) — deterministic across restore/restore, though the
  /// post-restore replacement choices differ from the never-restarted
  /// stream's (retention probabilities stay correct either way).
  void restore(dataset rows, std::size_t seen);

 private:
  std::size_t capacity_;
  std::uint64_t seed_;
  util::rng gen_;
  std::size_t seen_ = 0;
  dataset rows_;
};

/// Per-session refresh driver. See the file comment for the data flow.
///
/// Ownership: owns the training log, the base training set copy, every
/// candidate it fits, and (when asynchronous) a single background worker.
/// The incumbent is shared (shared_ptr), so the owner and in-flight
/// scoring can both hold it across a promotion.
///
/// Thread-safety: every public member may be called concurrently; the
/// promotion callback is invoked OUTSIDE the pipeline mutex (owners may
/// take their own locks in it), from the observe() caller in synchronous
/// mode or from the background worker otherwise.
///
/// Blocking: observe() is O(rows) bookkeeping unless it triggers a
/// synchronous retrain; refresh_now() and the destructor block through any
/// in-flight refit.
class refresh_pipeline {
 public:
  /// Invoked on promotion with the new predictor; the owner must install
  /// it (serving: rebuild the surrogate evaluator + advance_epoch on the
  /// engine) before returning. Must not call back into the pipeline.
  using promote_callback = std::function<void(std::shared_ptr<const hw_predictor>)>;

  /// `base_train` is the original benchmark training slice; candidates fit
  /// on base_train + logged rows. `incumbent` is the session's current
  /// model. Throws std::invalid_argument on a null incumbent, an empty
  /// base set, holdout_fraction outside (0,1) or a negative margin.
  refresh_pipeline(refresh_options opt, gbt_params params, dataset base_train,
                   std::shared_ptr<const hw_predictor> incumbent,
                   promote_callback on_promote);

  /// Blocks through any in-flight background refit.
  ~refresh_pipeline();

  refresh_pipeline(const refresh_pipeline&) = delete;
  refresh_pipeline& operator=(const refresh_pipeline&) = delete;

  /// Feeds ground-truth rows into the reservoir and, when
  /// {min_new_samples, interval} gate opens, kicks off one retrain attempt
  /// (inline when `synchronous`, else on the background worker).
  void observe(const dataset& rows);

  /// Forces one retrain attempt now, ignoring the trigger gate (any
  /// background attempt is drained first). Returns true when the candidate
  /// was promoted; false when the log is still empty, the candidate was
  /// rejected, or — in synchronous mode — another thread's inline attempt
  /// is currently running (this call never doubles up on it).
  bool refresh_now();

  /// Blocks until no retrain attempt is in flight.
  void drain();

  [[nodiscard]] refresh_stats stats() const;
  [[nodiscard]] const refresh_options& options() const noexcept { return opt_; }

  /// Serialized reservoir state: the retained rows plus the total ever
  /// offered — everything a restarted pipeline needs to keep reservoir
  /// probabilities correct (see training_log::restore).
  struct log_state {
    dataset rows;
    std::size_t seen = 0;
  };
  /// Snapshot of the training log (drains any in-flight refit first so
  /// the copy is not torn between a trigger and its bookkeeping).
  [[nodiscard]] log_state export_log();
  /// Replaces the training log with a snapshot taken by export_log —
  /// the warm-boot path of session restore. Counters derived from the log
  /// (observed/logged/discarded) resume from the snapshot; attempt and
  /// promotion counters always restart at zero with the pipeline.
  void restore_log(log_state state);

  /// The original benchmark training slice candidates refit on (immutable
  /// after construction; serialized with session snapshots).
  [[nodiscard]] const dataset& base_training_set() const noexcept { return base_train_; }

 private:
  /// One refit: fit candidate on base+snapshot, score both sides on the
  /// held-out slice, gate, maybe promote. Runs without holding `mu_`
  /// except for the bookkeeping sections. Returns true on promotion.
  bool attempt(dataset logged, std::uint64_t attempt_index);

  refresh_options opt_;
  gbt_params params_;
  dataset base_train_;
  promote_callback on_promote_;

  mutable std::mutex mu_;  ///< guards everything below
  training_log log_;  ///< also the `observed` counter (log_.seen())
  std::shared_ptr<const hw_predictor> incumbent_;
  std::size_t new_since_attempt_ = 0;
  std::uint64_t attempt_counter_ = 0;  ///< claimed at trigger time (seeds the split)
  bool retrain_inflight_ = false;
  std::chrono::steady_clock::time_point last_attempt_;
  std::size_t attempts_ = 0;
  std::size_t promotions_ = 0;
  std::size_t rejections_ = 0;
  double last_candidate_tau_ = 0.0;
  double last_incumbent_tau_ = 0.0;
  double promoted_candidate_tau_ = 0.0;
  double promoted_incumbent_tau_ = 0.0;

  /// Background worker (null in synchronous mode). Declared last: drained
  /// first on destruction, while every field above is still alive.
  std::unique_ptr<util::thread_pool> worker_;
};

}  // namespace mapcq::surrogate
