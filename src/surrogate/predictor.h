#pragma once
// The deployed hardware-cost predictor: two boosted ensembles (latency,
// energy) behind the same call signature as the analytic models, so the GA
// evaluator can swap between measured-model and surrogate (paper Fig. 5,
// "HW Performance Characterization").

#include <memory>

#include "perf/work.h"
#include "soc/compute_unit.h"
#include "surrogate/dataset.h"
#include "surrogate/gbt.h"

namespace mapcq::surrogate {

/// Fitted latency + energy predictor.
class hw_predictor {
 public:
  /// Trains both ensembles on the benchmark dataset.
  hw_predictor(const dataset& train_set, const gbt_params& params = {});

  /// Predicted latency (ms) of one sublayer on a CU at a DVFS level.
  [[nodiscard]] double latency_ms(const perf::sublayer_cost& cost, const soc::compute_unit& cu,
                                  std::size_t level, std::size_t concurrency) const;

  /// Predicted energy (mJ).
  [[nodiscard]] double energy_mj(const perf::sublayer_cost& cost, const soc::compute_unit& cu,
                                 std::size_t level, std::size_t concurrency) const;

  /// Held-out quality metrics.
  struct fidelity {
    double latency_rmse = 0.0;
    double latency_mape = 0.0;
    double latency_r2 = 0.0;
    double energy_rmse = 0.0;
    double energy_mape = 0.0;
    double energy_r2 = 0.0;
  };
  [[nodiscard]] fidelity evaluate(const dataset& test_set) const;

  [[nodiscard]] const gbt_regressor& latency_model() const noexcept { return *latency_; }
  [[nodiscard]] const gbt_regressor& energy_model() const noexcept { return *energy_; }

 private:
  std::unique_ptr<gbt_regressor> latency_;
  std::unique_ptr<gbt_regressor> energy_;
};

}  // namespace mapcq::surrogate
