#pragma once
// The deployed hardware-cost predictor: two boosted ensembles (latency,
// energy) behind the same call signature as the analytic models, so the GA
// evaluator can swap between measured-model and surrogate (paper Fig. 5,
// "HW Performance Characterization").

#include <memory>

#include "perf/work.h"
#include "soc/compute_unit.h"
#include "surrogate/dataset.h"
#include "surrogate/gbt.h"

namespace mapcq::surrogate {

/// Fitted latency + energy predictor.
///
/// Ownership: owns both fitted ensembles outright; the training dataset is
/// only borrowed during construction. A `core::evaluator_options::predictor`
/// pointing at an hw_predictor borrows it — the owner (e.g. a serving
/// session) must keep it alive for the evaluator's lifetime.
///
/// Thread-safety: immutable once constructed — every member is const and
/// safe to call concurrently from any thread (the GA's parallel evaluation
/// workers all share one predictor).
///
/// Blocking: construction trains both GBT ensembles (seconds at paper-scale
/// benchmark sizes); predictions are tree walks, microseconds, and never
/// block.
class hw_predictor {
 public:
  /// Trains both ensembles on the benchmark dataset (blocking; see class
  /// comment). Throws std::invalid_argument on an empty or ragged dataset.
  hw_predictor(const dataset& train_set, const gbt_params& params = {});

  /// Adopts two already-fitted ensembles without training — the restore
  /// path of session snapshots (serving/session_snapshot.h). Predictions
  /// are bit-identical to the predictor the ensembles came from.
  hw_predictor(gbt_regressor latency, gbt_regressor energy);

  /// Predicted latency (ms) of one sublayer on a CU at a DVFS level.
  [[nodiscard]] double latency_ms(const perf::sublayer_cost& cost, const soc::compute_unit& cu,
                                  std::size_t level, std::size_t concurrency) const;

  /// Predicted energy (mJ).
  [[nodiscard]] double energy_mj(const perf::sublayer_cost& cost, const soc::compute_unit& cu,
                                 std::size_t level, std::size_t concurrency) const;

  /// Held-out quality metrics (RMSE in target units, MAPE in %, R² in
  /// [-inf, 1]); see `evaluate`.
  struct fidelity {
    double latency_rmse = 0.0;
    double latency_mape = 0.0;
    double latency_r2 = 0.0;
    double energy_rmse = 0.0;
    double energy_mape = 0.0;
    double energy_r2 = 0.0;
  };
  /// Scores both ensembles on a held-out set (pure; `test_set` borrowed
  /// for the call).
  [[nodiscard]] fidelity evaluate(const dataset& test_set) const;

  [[nodiscard]] const gbt_regressor& latency_model() const noexcept { return *latency_; }
  [[nodiscard]] const gbt_regressor& energy_model() const noexcept { return *energy_; }

 private:
  std::unique_ptr<gbt_regressor> latency_;
  std::unique_ptr<gbt_regressor> energy_;
};

}  // namespace mapcq::surrogate
