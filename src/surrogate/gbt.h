#pragma once
// Gradient-boosted tree ensemble for squared loss -- the XGBoost [20] stand-
// in used to predict per-sublayer latency and energy inside the GA loop
// (paper §V-E).

#include <cstdint>
#include <span>
#include <vector>

#include "surrogate/decision_tree.h"

namespace mapcq::surrogate {

struct fitted_ensemble;  // trainer.h; also the serialized form of a regressor

/// Boosting hyper-parameters.
struct gbt_params {
  std::size_t n_trees = 120;
  double learning_rate = 0.10;
  double subsample = 0.85;   ///< row subsample per tree, (0,1]
  tree_params tree;
  std::uint64_t seed = 7;
  /// Targets are strictly positive and span decades; fit in log space.
  bool log_target = true;
};

/// A fitted ensemble.
///
/// Ownership: owns its trees; training inputs are borrowed only for the
/// constructor call.
///
/// Thread-safety: immutable after construction — all members are const and
/// callable concurrently.
///
/// Blocking: the constructor runs the whole boosting loop (the only
/// expensive operation); `predict` walks `n_trees` trees and never blocks.
class gbt_regressor {
 public:
  /// Fits to rows `x` (equal widths) and targets `y`; throws
  /// std::invalid_argument on empty or mismatched input, or non-positive
  /// targets with log_target.
  gbt_regressor(std::span<const std::vector<double>> x, std::span<const double> y,
                const gbt_params& params = {});

  /// Rebuilds a fitted regressor from its serialized parts without
  /// retraining (see serving/session_snapshot.h): the trees/base/rmse of a
  /// prior fit plus the learning rate and target transform it was fitted
  /// under. Predictions are bit-identical to the original regressor's.
  gbt_regressor(fitted_ensemble parts, double learning_rate, bool log_target);

  /// Prediction for one feature row (width must match training).
  [[nodiscard]] double predict(std::span<const double> row) const;

  /// Batch prediction.
  [[nodiscard]] std::vector<double> predict(std::span<const std::vector<double>> rows) const;

  /// Total split gain per feature, normalized to sum 1.
  [[nodiscard]] std::vector<double> feature_importance(std::size_t n_features) const;

  [[nodiscard]] std::size_t tree_count() const noexcept { return trees_.size(); }

  /// Training RMSE of the final model (in target space).
  [[nodiscard]] double train_rmse() const noexcept { return train_rmse_; }

  /// @name Serialized parts (the inverse of the restore constructor)
  /// @{
  [[nodiscard]] const std::vector<regression_tree>& trees() const noexcept { return trees_; }
  [[nodiscard]] double base() const noexcept { return base_; }
  [[nodiscard]] double learning_rate() const noexcept { return learning_rate_; }
  [[nodiscard]] bool log_target() const noexcept { return log_target_; }
  /// @}

 private:
  std::vector<regression_tree> trees_;
  double base_ = 0.0;
  double learning_rate_ = 0.1;
  bool log_target_ = true;
  double train_rmse_ = 0.0;
};

}  // namespace mapcq::surrogate
