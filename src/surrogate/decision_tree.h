#pragma once
// Regression tree for gradient boosting: exact greedy splitting with the
// XGBoost gain criterion under squared loss (unit hessians):
//
//   gain = G_L^2/(n_L + lambda) + G_R^2/(n_R + lambda) - G^2/(n + lambda)
//
// where G is the sum of residuals in a node. Leaf weight = G/(n + lambda).

#include <cstddef>
#include <span>
#include <vector>

namespace mapcq::surrogate {

/// Tree growth hyper-parameters.
struct tree_params {
  int max_depth = 6;
  std::size_t min_samples_leaf = 4;
  double lambda = 1.0;     ///< L2 regularization on leaf weights
  double min_gain = 1e-9;  ///< minimum split gain
};

/// A fitted regression tree over fixed-width feature rows. Immutable after
/// construction (thread-safe to share); owns its node array; training
/// spans are borrowed only inside the constructor, which does all the
/// work (exact greedy splits over every feature).
class regression_tree {
 public:
  /// One tree node, exposed as a plain value so fitted trees can be
  /// serialized and rebuilt (serving/session_snapshot.h). Internal nodes
  /// carry (feature, threshold, gain, children); leaves carry `value`.
  struct node {
    bool leaf = true;
    std::size_t feature = 0;
    double threshold = 0.0;
    double value = 0.0;  ///< leaf weight
    double gain = 0.0;   ///< split gain (internal nodes)
    std::size_t left = 0;
    std::size_t right = 0;
  };

  /// Fits to (x, residuals); every row must have the same width.
  /// `row_index` selects the subsample of rows to fit on (copied; the
  /// recursive partitioning permutes its own copy).
  regression_tree(std::span<const std::vector<double>> x, std::span<const double> y,
                  std::span<const std::size_t> row_index, const tree_params& params);

  /// Rebuilds a fitted tree from serialized parts — the restore half of
  /// `nodes()`. Throws std::invalid_argument on an empty node array or an
  /// internal node whose child index is out of range (a truncated snapshot
  /// must fail here, not crash in predict()).
  regression_tree(std::vector<node> nodes, int depth);

  /// Predicted value for one feature row.
  [[nodiscard]] double predict(std::span<const double> row) const;

  /// Number of internal + leaf nodes.
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

  /// Depth actually reached.
  [[nodiscard]] int depth() const noexcept { return depth_; }

  /// Accumulates per-feature total gain into `importance` (size = features).
  void add_feature_gain(std::vector<double>& importance) const;

  /// The fitted node array (root at index 0), for serialization.
  [[nodiscard]] const std::vector<node>& nodes() const noexcept { return nodes_; }

 private:
  std::size_t grow(std::span<const std::vector<double>> x, std::span<const double> y,
                   std::vector<std::size_t>& rows, int depth, const tree_params& params);

  std::vector<node> nodes_;
  int depth_ = 0;
};

}  // namespace mapcq::surrogate
