#include "surrogate/features.h"

#include <cmath>

namespace mapcq::surrogate {

std::array<double, feature_count> featurize(const perf::sublayer_cost& cost,
                                            const soc::compute_unit& cu, std::size_t level,
                                            std::size_t concurrency) {
  std::array<double, feature_count> f{};
  const double moved = cost.moved_bytes();
  f[0] = std::log1p(cost.flops);
  f[1] = std::log1p(cost.weight_bytes);
  f[2] = std::log1p(cost.in_bytes);
  f[3] = std::log1p(cost.out_bytes);
  f[4] = cost.width_frac;
  f[5] = moved > 0.0 ? cost.flops / moved : 0.0;
  f[6] = soc::classify(cost.kind) == soc::op_class::matmul ? 1.0 : 0.0;
  f[7] = cu.kind == soc::cu_kind::gpu ? 1.0 : 0.0;
  f[8] = cu.kind == soc::cu_kind::dla ? 1.0 : 0.0;
  f[9] = cu.kind == soc::cu_kind::cpu ? 1.0 : 0.0;
  f[10] = std::log1p(cu.peak_gflops);
  f[11] = cu.mem_bandwidth_gbps;
  f[12] = cu.launch_overhead_ms;
  f[13] = cu.theta(level);
  f[14] = cu.dvfs.frequency_mhz(level) / 1000.0;
  f[15] = static_cast<double>(concurrency);
  f[16] = cu.static_power_w;
  f[17] = cu.dynamic_power_w;
  return f;
}

const std::vector<std::string>& feature_names() {
  static const std::vector<std::string> names = {
      "log_flops",   "log_wbytes",  "log_inbytes", "log_outbytes", "width_frac",
      "arith_int",   "op_matmul",   "cu_gpu",      "cu_dla",       "cu_cpu",
      "log_peak",    "mem_bw",      "launch_ms",   "theta",        "freq_ghz",
      "concurrency", "static_w",    "dynamic_w"};
  return names;
}

}  // namespace mapcq::surrogate
