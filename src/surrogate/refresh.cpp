#include "surrogate/refresh.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "surrogate/predictor.h"

namespace mapcq::surrogate {

training_log::training_log(std::size_t capacity, std::uint64_t seed)
    : capacity_(std::max<std::size_t>(1, capacity)), seed_(seed), gen_(seed) {}

void training_log::add(std::vector<double> x, double latency_ms, double energy_mj) {
  ++seen_;
  if (rows_.size() < capacity_) {
    rows_.add_row(std::move(x), latency_ms, energy_mj);
    return;
  }
  // Algorithm R: the i-th offered row replaces a uniformly chosen retained
  // one with probability capacity/i, which keeps the reservoir a uniform
  // sample of everything seen so far.
  const auto j = static_cast<std::size_t>(
      gen_.uniform_int(0, static_cast<std::int64_t>(seen_) - 1));
  if (j < capacity_) {
    rows_.x[j] = std::move(x);
    rows_.latency_ms[j] = latency_ms;
    rows_.energy_mj[j] = energy_mj;
  }
}

void training_log::restore(dataset rows, std::size_t seen) {
  if (rows.size() > capacity_)
    throw std::invalid_argument("training_log: restored rows exceed capacity");
  if (seen < rows.size())
    throw std::invalid_argument("training_log: restored seen below retained rows");
  rows_ = std::move(rows);
  seen_ = seen;
  // Fresh generator keyed on (seed, seen): deterministic for a given
  // snapshot, decoupled from however many draws the pre-restart stream
  // consumed (xoshiro state is not serialized).
  gen_ = util::rng(seed_ ^ (0x9e3779b97f4a7c15ULL * (seen_ + 1)));
}

refresh_pipeline::refresh_pipeline(refresh_options opt, gbt_params params, dataset base_train,
                                   std::shared_ptr<const hw_predictor> incumbent,
                                   promote_callback on_promote)
    : opt_(opt),
      params_(params),
      base_train_(std::move(base_train)),
      on_promote_(std::move(on_promote)),
      log_(opt.log_capacity, opt.seed),
      incumbent_(std::move(incumbent)),
      last_attempt_(std::chrono::steady_clock::now()) {
  if (!incumbent_) throw std::invalid_argument("refresh_pipeline: null incumbent");
  if (base_train_.size() == 0)
    throw std::invalid_argument("refresh_pipeline: empty base training set");
  if (opt_.holdout_fraction <= 0.0 || opt_.holdout_fraction >= 1.0)
    throw std::invalid_argument("refresh_pipeline: holdout_fraction out of (0,1)");
  if (opt_.promotion_margin < 0.0)
    throw std::invalid_argument("refresh_pipeline: negative promotion_margin");
  if (opt_.min_new_samples == 0)
    throw std::invalid_argument("refresh_pipeline: min_new_samples must be > 0");
  if (!opt_.synchronous) worker_ = std::make_unique<util::thread_pool>(1);
}

refresh_pipeline::~refresh_pipeline() {
  // The worker's destructor drains the queue; a promotion fired from here
  // still sees every other member alive (worker_ is declared last).
  worker_.reset();
}

void refresh_pipeline::observe(const dataset& rows) {
  if (rows.size() == 0) return;
  bool trigger = false;
  dataset snapshot;
  std::uint64_t index = 0;
  {
    const std::lock_guard<std::mutex> lock{mu_};
    for (std::size_t i = 0; i < rows.size(); ++i)
      log_.add(rows.x[i], rows.latency_ms[i], rows.energy_mj[i]);
    new_since_attempt_ += rows.size();
    const bool interval_open =
        opt_.interval.count() <= 0 ||
        std::chrono::steady_clock::now() - last_attempt_ >= opt_.interval;
    if (!retrain_inflight_ && interval_open && new_since_attempt_ >= opt_.min_new_samples) {
      trigger = true;
      retrain_inflight_ = true;
      new_since_attempt_ = 0;
      index = ++attempt_counter_;
      snapshot = log_.rows();  // copy: the refit must not race later adds
    }
  }
  if (!trigger) return;
  if (!worker_) {
    attempt(std::move(snapshot), index);
    return;
  }
  // One triggered attempt at a time (retrain_inflight_), so the single
  // worker never queues more than one refit.
  auto shared = std::make_shared<dataset>(std::move(snapshot));
  worker_->submit([this, shared, index] { attempt(std::move(*shared), index); });
}

bool refresh_pipeline::refresh_now() {
  drain();
  dataset snapshot;
  std::uint64_t index = 0;
  {
    const std::lock_guard<std::mutex> lock{mu_};
    if (retrain_inflight_ || log_.size() == 0) return false;
    retrain_inflight_ = true;
    new_since_attempt_ = 0;
    index = ++attempt_counter_;
    snapshot = log_.rows();
  }
  return attempt(std::move(snapshot), index);
}

void refresh_pipeline::drain() {
  if (worker_) worker_->wait_idle();
}

bool refresh_pipeline::attempt(dataset logged, std::uint64_t attempt_index) {
  // The held-out slice comes from the *logged* traffic only: rows neither
  // model has trained on (the incumbent predates them, the candidate fits
  // on the other side of the split), drawn from the distribution the
  // session actually serves. Holding out from base+log instead would leak
  // the incumbent's own training rows into its score and bias the gate
  // toward keeping it.
  std::shared_ptr<const hw_predictor> candidate;
  rank_fidelity cand_fid;
  rank_fidelity inc_fid;
  bool promote = false;
  try {
    const dataset_split parts =
        split(logged, 1.0 - opt_.holdout_fraction, opt_.seed ^ (0x9e37 + attempt_index));
    dataset train = base_train_;
    train.append(parts.train);
    candidate = std::make_shared<const hw_predictor>(train, params_);
    cand_fid = score_predictor(*candidate, parts.test);
    std::shared_ptr<const hw_predictor> incumbent;
    {
      const std::lock_guard<std::mutex> lock{mu_};
      incumbent = incumbent_;
    }
    inc_fid = score_predictor(*incumbent, parts.test);
    promote = should_promote(cand_fid, inc_fid, opt_.promotion_margin);
  } catch (...) {
    // A degenerate refit (e.g. a holdout slice the split could not fill)
    // counts as a rejected attempt; the incumbent keeps serving.
    const std::lock_guard<std::mutex> lock{mu_};
    ++attempts_;
    ++rejections_;
    retrain_inflight_ = false;
    last_attempt_ = std::chrono::steady_clock::now();
    return false;
  }

  {
    const std::lock_guard<std::mutex> lock{mu_};
    ++attempts_;
    last_candidate_tau_ = cand_fid.score();
    last_incumbent_tau_ = inc_fid.score();
    if (promote) {
      ++promotions_;
      incumbent_ = candidate;
      promoted_candidate_tau_ = cand_fid.score();
      promoted_incumbent_tau_ = inc_fid.score();
    } else {
      ++rejections_;
      // Rejections release the gate here; promotions hold it through the
      // owner's install below, so a concurrently triggered attempt can
      // never race a newer candidate past an older one's pending install.
      retrain_inflight_ = false;
    }
    last_attempt_ = std::chrono::steady_clock::now();
  }
  // The owner's swap runs outside `mu_` so it may take its own locks (the
  // serving session takes its surrogate mutex and the engine's epoch swap)
  // without ordering against pipeline calls made under those locks.
  if (promote) {
    if (on_promote_) on_promote_(candidate);
    const std::lock_guard<std::mutex> lock{mu_};
    retrain_inflight_ = false;
  }
  return promote;
}

refresh_pipeline::log_state refresh_pipeline::export_log() {
  // Drain first so a triggered-but-unstarted background refit cannot leave
  // the copy torn between the trigger's bookkeeping and the attempt's.
  drain();
  const std::lock_guard<std::mutex> lock{mu_};
  return log_state{log_.rows(), log_.seen()};
}

void refresh_pipeline::restore_log(log_state state) {
  const std::lock_guard<std::mutex> lock{mu_};
  log_.restore(std::move(state.rows), state.seen);
  new_since_attempt_ = 0;
}

refresh_stats refresh_pipeline::stats() const {
  const std::lock_guard<std::mutex> lock{mu_};
  refresh_stats s;
  s.observed = log_.seen();
  s.logged = log_.size();
  s.discarded = log_.discarded();
  s.attempts = attempts_;
  s.promotions = promotions_;
  s.rejections = rejections_;
  s.epoch = promotions_;
  s.last_candidate_tau = last_candidate_tau_;
  s.last_incumbent_tau = last_incumbent_tau_;
  s.promoted_candidate_tau = promoted_candidate_tau_;
  s.promoted_incumbent_tau = promoted_incumbent_tau_;
  return s;
}

}  // namespace mapcq::surrogate
